//! End-to-end TMF tests: full nodes (TMP + AUDITPROCESS + BACKOUTPROCESS +
//! DISCPROCESSes + transaction tables) driven by scripted transaction
//! programs, with faults injected at every interesting protocol point.

use bytes::Bytes;
use encompass_audit::monitor::MonitorTrail;
use encompass_sim::{
    Ctx, CpuId, Fault, NodeId, Payload, Pid, Process, SimConfig, SimDuration, SimTime, TimerId,
    World,
};
use encompass_storage::discprocess::{DiscError, DiscReply};
use encompass_storage::types::{FileDef, PartitionSpec, Transid, VolumeRef};
use encompass_storage::Catalog;
use guardian::{Rpc, Target, TimerOutcome};
use tmf::facility::{spawn_tmf_network, TmfNodeConfig};
use tmf::session::{DbOp, SessionEvent, SessionOptions, TmfSession};
use tmf::state::AbortReason;
use tmf::tmp::{TmpMsg, TmpReply};
use std::cell::RefCell;
use std::rc::Rc;

fn b(s: &str) -> Bytes {
    Bytes::copy_from_slice(s.as_bytes())
}

/// One step of a scripted transaction program.
#[derive(Clone)]
enum Step {
    Begin,
    Read(&'static str, &'static str),
    ReadLock(&'static str, &'static str),
    Insert(&'static str, &'static str, &'static str),
    Update(&'static str, &'static str, &'static str),
    Delete(&'static str, &'static str),
    End,
    Abort,
    /// Idle for a duration (lets the driver line faults up between steps).
    Pause(SimDuration),
}

type Log = Rc<RefCell<Vec<String>>>;

struct TxnDriver {
    session: TmfSession,
    options: SessionOptions,
    script: Vec<Step>,
    next: usize,
    log: Log,
    /// When present, filled with the transid at `Began` (for tests that
    /// poke the protocol directly with that transid afterwards).
    transid_out: Option<Rc<RefCell<Option<Transid>>>>,
}

impl TxnDriver {
    fn new(catalog: Catalog, script: Vec<Step>, log: Log) -> TxnDriver {
        TxnDriver::with_options(catalog, SessionOptions::default(), script, log)
    }

    fn with_options(
        catalog: Catalog,
        options: SessionOptions,
        script: Vec<Step>,
        log: Log,
    ) -> TxnDriver {
        TxnDriver {
            session: TmfSession::new(catalog, 0),
            options,
            script,
            next: 0,
            log,
            transid_out: None,
        }
    }

    fn kick(&mut self, ctx: &mut Ctx<'_>) {
        if self.next < self.script.len() {
            let step = self.script[self.next].clone();
            self.next += 1;
            let refused = match step {
                Step::Begin => {
                    self.session.begin(ctx, self.options, 0);
                    None
                }
                Step::Read(f, k) => self
                    .session
                    .op(ctx, DbOp::Read { file: f.into(), key: b(k) }, 0),
                Step::ReadLock(f, k) => self
                    .session
                    .op(ctx, DbOp::ReadLock { file: f.into(), key: b(k) }, 0),
                Step::Insert(f, k, v) => self
                    .session
                    .op(ctx, DbOp::Insert { file: f.into(), key: b(k), value: b(v) }, 0),
                Step::Update(f, k, v) => self
                    .session
                    .op(ctx, DbOp::Update { file: f.into(), key: b(k), value: b(v) }, 0),
                Step::Delete(f, k) => self
                    .session
                    .op(ctx, DbOp::Delete { file: f.into(), key: b(k) }, 0),
                Step::End => {
                    self.session.end(ctx, 0);
                    None
                }
                Step::Abort => {
                    self.session.abort(ctx, AbortReason::Voluntary, 0);
                    None
                }
                Step::Pause(d) => {
                    ctx.set_timer(d, 1);
                    None
                }
            };
            if let Some(ev) = refused {
                self.on_event(ctx, ev);
            }
        }
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: SessionEvent) {
        if let (SessionEvent::Began { .. }, Some(slot)) = (&ev, &self.transid_out) {
            *slot.borrow_mut() = self.session.transid();
        }
        let entry = match &ev {
            SessionEvent::Began { .. } => "began".to_string(),
            SessionEvent::OpDone { reply, .. } => match reply {
                DiscReply::Value(Some(v)) => {
                    format!("value:{}", String::from_utf8_lossy(v))
                }
                DiscReply::Value(None) => "value:<none>".to_string(),
                DiscReply::Ok => "ok".to_string(),
                DiscReply::Err(e) => format!("err:{e:?}"),
                other => format!("{other:?}"),
            },
            SessionEvent::Committed { .. } => "committed".to_string(),
            SessionEvent::Aborted { .. } => "aborted".to_string(),
            SessionEvent::Failed { .. } => "failed".to_string(),
        };
        self.log.borrow_mut().push(entry);
        self.kick(ctx);
    }
}

impl Process for TxnDriver {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.kick(ctx);
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, _src: Pid, payload: Payload) {
        if let Ok(Some(ev)) = self.session.accept(ctx, payload) {
            self.on_event(ctx, ev);
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerId, tag: u64) {
        if tag == 1 {
            self.kick(ctx);
            return;
        }
        if let Some(ev) = self.session.on_timer(ctx, tag) {
            self.on_event(ctx, ev);
        }
    }
    fn kind(&self) -> &'static str {
        "txn-driver"
    }
}

fn drive(world: &mut World, node: NodeId, cpu: u8, catalog: Catalog, script: Vec<Step>) -> Log {
    let log: Log = Rc::new(RefCell::new(Vec::new()));
    world.spawn(
        node,
        cpu,
        Box::new(TxnDriver::new(catalog, script, log.clone())),
    );
    log
}

/// Like [`drive`], with explicit [`SessionOptions`] (read-only tests).
fn drive_with(
    world: &mut World,
    node: NodeId,
    cpu: u8,
    catalog: Catalog,
    options: SessionOptions,
    script: Vec<Step>,
) -> Log {
    let log: Log = Rc::new(RefCell::new(Vec::new()));
    world.spawn(
        node,
        cpu,
        Box::new(TxnDriver::with_options(catalog, options, script, log.clone())),
    );
    log
}

/// Like [`drive`], but also returns a slot that receives the transid.
fn drive_capturing(
    world: &mut World,
    node: NodeId,
    cpu: u8,
    catalog: Catalog,
    script: Vec<Step>,
) -> (Log, Rc<RefCell<Option<Transid>>>) {
    let log: Log = Rc::new(RefCell::new(Vec::new()));
    let slot = Rc::new(RefCell::new(None));
    let mut driver = TxnDriver::new(catalog, script, log.clone());
    driver.transid_out = Some(slot.clone());
    world.spawn(node, cpu, Box::new(driver));
    (log, slot)
}

/// One-shot raw client: send `msg` to `node`'s `$TMP` and record the reply.
fn ask_tmp(world: &mut World, node: NodeId, cpu: u8, msg: TmpMsg) -> Rc<RefCell<Option<TmpReply>>> {
    struct TmpClient {
        node: NodeId,
        msg: Option<TmpMsg>,
        rpc: Rpc<TmpMsg, TmpReply>,
        out: Rc<RefCell<Option<TmpReply>>>,
    }
    impl Process for TmpClient {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            self.rpc.call_persistent(
                ctx,
                Target::Named(self.node, "$TMP".into()),
                self.msg.take().expect("one shot"),
                SimDuration::from_millis(100),
                0,
            );
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _src: Pid, payload: Payload) {
            if let Ok(c) = self.rpc.accept(ctx, payload) {
                *self.out.borrow_mut() = Some(c.body);
                ctx.exit();
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerId, tag: u64) {
            if let TimerOutcome::Expired { .. } = self.rpc.on_timer(ctx, tag) {
                ctx.exit();
            }
        }
        fn kind(&self) -> &'static str {
            "tmp-client"
        }
    }
    let out = Rc::new(RefCell::new(None));
    world.spawn(
        node,
        cpu,
        Box::new(TmpClient {
            node,
            msg: Some(msg),
            rpc: Rpc::new(11),
            out: out.clone(),
        }),
    );
    out
}

/// One node, one volume, one audited file.
fn single_node() -> (World, NodeId, Catalog) {
    single_node_with(TmfNodeConfig::default())
}

/// Like [`single_node`], with an explicit TMF configuration.
fn single_node_with(cfg: TmfNodeConfig) -> (World, NodeId, Catalog) {
    let mut w = World::new(SimConfig::default());
    let n = w.add_node(4);
    let mut catalog = Catalog::new();
    catalog.add(FileDef::key_sequenced("accounts", VolumeRef::new(n, "$DATA")));
    spawn_tmf_network(&mut w, &catalog, cfg);
    (w, n, catalog)
}

/// Three linked nodes; `accounts` partitioned across nodes 0 and 1, and a
/// `remote` file on node 2.
fn three_nodes() -> (World, [NodeId; 3], Catalog) {
    let mut w = World::new(SimConfig::default());
    let n0 = w.add_node(4);
    let n1 = w.add_node(4);
    let n2 = w.add_node(4);
    w.add_link(n0, n1, SimDuration::from_millis(2));
    w.add_link(n1, n2, SimDuration::from_millis(2));
    w.add_link(n0, n2, SimDuration::from_millis(5));
    let mut catalog = Catalog::new();
    catalog.add(
        FileDef::key_sequenced("accounts", VolumeRef::new(n0, "$D0")).partitioned(vec![
            PartitionSpec {
                low_key: Bytes::new(),
                volume: VolumeRef::new(n0, "$D0"),
            },
            PartitionSpec {
                low_key: b("m"),
                volume: VolumeRef::new(n1, "$D1"),
            },
        ]),
    );
    catalog.add(FileDef::key_sequenced("remote", VolumeRef::new(n2, "$D2")));
    spawn_tmf_network(&mut w, &catalog, TmfNodeConfig::default());
    (w, [n0, n1, n2], catalog)
}

#[test]
fn single_node_commit() {
    let (mut w, n, catalog) = single_node();
    let log = drive(
        &mut w,
        n,
        0,
        catalog,
        vec![
            Step::Begin,
            Step::Insert("accounts", "alice", "100"),
            Step::Update("accounts", "alice", "150"),
            Step::End,
            Step::Read("accounts", "alice"),
        ],
    );
    w.run_for(SimDuration::from_secs(5));
    assert_eq!(
        log.borrow().as_slice(),
        &["began", "ok", "ok", "committed", "value:150"]
    );
    assert_eq!(w.metrics().get("tmf.commits"), 1);
    // the commit record is on the monitor trail
    assert_eq!(MonitorTrail::of(w.stable_mut(), n).commits(), 1);
}

#[test]
fn voluntary_abort_backs_out_updates() {
    let (mut w, n, catalog) = single_node();
    // committed baseline
    let log1 = drive(
        &mut w,
        n,
        0,
        catalog.clone(),
        vec![
            Step::Begin,
            Step::Insert("accounts", "bob", "500"),
            Step::End,
        ],
    );
    w.run_for(SimDuration::from_secs(3));
    assert_eq!(log1.borrow().last().unwrap(), "committed");
    // update then ABORT-TRANSACTION
    let log2 = drive(
        &mut w,
        n,
        1,
        catalog.clone(),
        vec![
            Step::Begin,
            Step::ReadLock("accounts", "bob"),
            Step::Update("accounts", "bob", "0"),
            Step::Abort,
            Step::Read("accounts", "bob"),
        ],
    );
    w.run_for(SimDuration::from_secs(5));
    assert_eq!(
        log2.borrow().as_slice(),
        &["began", "value:500", "ok", "aborted", "value:500"],
        "backout restored the before-image"
    );
    assert_eq!(w.metrics().get("tmf.aborts"), 1);
    assert!(w.metrics().get("backout.completed") >= 1);
    assert_eq!(MonitorTrail::of(w.stable_mut(), n).aborts(), 1);
}

#[test]
fn distributed_commit_across_three_nodes() {
    let (mut w, [n0, _n1, _n2], catalog) = three_nodes();
    let log = drive(
        &mut w,
        n0,
        0,
        catalog,
        vec![
            Step::Begin,
            Step::Insert("accounts", "alpha", "1"), // node 0 partition
            Step::Insert("accounts", "zulu", "2"),  // node 1 partition
            Step::Insert("remote", "r1", "3"),      // node 2
            Step::End,
            Step::Read("accounts", "zulu"),
            Step::Read("remote", "r1"),
        ],
    );
    w.run_for(SimDuration::from_secs(10));
    assert_eq!(
        log.borrow().as_slice(),
        &["began", "ok", "ok", "ok", "committed", "value:2", "value:3"]
    );
    // remote begins went to two nodes; phase 1 fanned out over the network
    assert_eq!(w.metrics().get("tmf.msgs.remote_begin"), 2);
    assert_eq!(w.metrics().get("tmf.msgs.phase1_net"), 2);
    assert_eq!(w.metrics().get("tmf.msgs.phase2_net"), 2);
    assert_eq!(w.metrics().get("tmf.commits"), 1);
}

#[test]
fn partition_before_phase_one_aborts_everywhere() {
    let (mut w, [n0, _n1, n2], catalog) = three_nodes();
    let log = drive(
        &mut w,
        n0,
        0,
        catalog,
        vec![
            Step::Begin,
            Step::Insert("accounts", "alpha", "1"),
            Step::Insert("remote", "r1", "3"),
            Step::Pause(SimDuration::from_millis(500)),
            Step::End,
            Step::Read("accounts", "alpha"),
        ],
    );
    // cut node 2 off after its insert landed but before END-TRANSACTION
    // (the driver pauses 500ms between the last insert and END)
    while log.borrow().len() < 3 && w.now() < SimTime::from_micros(10_000_000) {
        w.run_for(SimDuration::from_millis(1));
    }
    assert_eq!(log.borrow().len(), 3, "both inserts landed: {:?}", log.borrow());
    w.inject(Fault::Partition(vec![n2]));
    // wait for END + abort to play out
    w.run_for(SimDuration::from_secs(10));
    assert_eq!(
        log.borrow().as_slice(),
        &["began", "ok", "ok", "aborted", "value:<none>"],
        "phase-one failure backed out node 0's insert too"
    );
    assert_eq!(w.metrics().get("tmf.commits"), 0);
    // node 2 is still partitioned; its abort arrives when the partition
    // heals (safe delivery)
    w.inject(Fault::HealAllLinks);
    w.run_for(SimDuration::from_secs(10));
    let log2 = drive(
        &mut w,
        n0,
        1,
        {
            let mut c = Catalog::new();
            c.add(FileDef::key_sequenced("remote", VolumeRef::new(n2, "$D2")));
            c
        },
        vec![Step::Read("remote", "r1")],
    );
    w.run_for(SimDuration::from_secs(5));
    assert_eq!(
        log2.borrow().as_slice(),
        &["value:<none>"],
        "node 2's insert was backed out after the heal"
    );
}

#[test]
fn partition_during_phase_two_holds_locks_until_heal() {
    let (mut w, [n0, _n1, n2], catalog) = three_nodes();
    let log = drive(
        &mut w,
        n0,
        0,
        catalog.clone(),
        vec![
            Step::Begin,
            Step::Insert("remote", "r2", "v"),
            Step::End,
        ],
    );
    // partition node 2 right after the commit record is written: node 2
    // has acknowledged phase one, and phase 2 is safe-delivery, so
    // END-TRANSACTION still completes on the home node while node 2's
    // locks stay held until the heal. Run until the commit record is
    // written (the metric flips), then cut.
    while w.metrics().get("tmf.commits") == 0 && w.now() < SimTime::from_micros(10_000_000) {
        w.run_for(SimDuration::from_millis(1));
    }
    assert_eq!(w.metrics().get("tmf.commits"), 1, "transaction committed");
    w.inject(Fault::Partition(vec![n2]));
    w.run_for(SimDuration::from_secs(2));
    assert_eq!(
        log.borrow().as_slice(),
        &["began", "ok", "committed"],
        "END-TRANSACTION completed despite the phase-2 partition"
    );
    // while partitioned, the record on node 2 is still locked: another
    // transaction's lock attempt times out
    let probe_catalog = catalog.clone();
    let log2 = drive(
        &mut w,
        n2,
        0,
        probe_catalog,
        vec![Step::Begin, Step::ReadLock("remote", "r2"), Step::Abort],
    );
    w.run_for(SimDuration::from_secs(3));
    assert_eq!(
        log2.borrow()[1],
        format!("err:{:?}", DiscError::LockTimeout),
        "locks held on the cut-off node: {:?}",
        log2.borrow()
    );
    // heal: safe-delivery phase 2 arrives, locks release
    w.inject(Fault::HealAllLinks);
    w.run_for(SimDuration::from_secs(3));
    let log3 = drive(
        &mut w,
        n2,
        1,
        catalog,
        vec![Step::Begin, Step::ReadLock("remote", "r2"), Step::Abort],
    );
    w.run_for(SimDuration::from_secs(3));
    assert_eq!(
        log3.borrow().as_slice(),
        &["began", "value:v", "aborted"],
        "after the heal the lock is free and the commit is visible"
    );
}

#[test]
fn cpu_failure_aborts_only_affected_transactions() {
    let (mut w, n, catalog) = single_node();
    // transaction A runs on cpu 0 and stays open
    let log_a = drive(
        &mut w,
        n,
        0,
        catalog.clone(),
        vec![
            Step::Begin,
            Step::Insert("accounts", "a", "1"),
            Step::Pause(SimDuration::from_secs(10)), // still open when cpu dies
            Step::End,
        ],
    );
    // transaction B runs on cpu 2 and also stays open across the failure
    let log_b = drive(
        &mut w,
        n,
        2,
        catalog.clone(),
        vec![
            Step::Begin,
            Step::Insert("accounts", "b", "2"),
            Step::Pause(SimDuration::from_secs(10)),
            Step::End,
        ],
    );
    w.run_for(SimDuration::from_secs(2));
    // kill cpu 0: A's requester dies with it
    w.inject(Fault::KillCpu(n, CpuId(0)));
    w.run_for(SimDuration::from_secs(15));
    assert!(log_a.borrow().len() <= 2, "A never completed: {:?}", log_a.borrow());
    assert_eq!(
        log_b.borrow().last().unwrap(),
        "committed",
        "B was uninvolved in the failure and committed: {:?}",
        log_b.borrow()
    );
    assert!(w.metrics().get("tmf.cpu_failure_aborts") >= 1);
    // A's insert was backed out
    let log_c = drive(
        &mut w,
        n,
        3,
        catalog,
        vec![Step::Read("accounts", "a"), Step::Read("accounts", "b")],
    );
    w.run_for(SimDuration::from_secs(3));
    assert_eq!(log_c.borrow().as_slice(), &["value:<none>", "value:2"]);
}

#[test]
fn lock_timeout_then_restart_transaction_succeeds() {
    let (mut w, n, catalog) = single_node();
    // T1 holds the lock for a while
    let log1 = drive(
        &mut w,
        n,
        0,
        catalog.clone(),
        vec![
            Step::Begin,
            Step::Insert("accounts", "hot", "1"),
            Step::Pause(SimDuration::from_secs(2)),
            Step::End,
        ],
    );
    w.run_for(SimDuration::from_millis(200));
    // T2 wants the same record; its lock wait (500ms) times out, it
    // restarts (abort + begin again), and succeeds after T1 commits
    let log2 = drive(
        &mut w,
        n,
        1,
        catalog,
        vec![
            Step::Begin,
            Step::ReadLock("accounts", "hot"),
            // first attempt will log err:LockTimeout; the driver script is
            // linear, so model RESTART-TRANSACTION explicitly:
            Step::Abort,
            Step::Pause(SimDuration::from_secs(3)),
            Step::Begin,
            Step::ReadLock("accounts", "hot"),
            Step::End,
        ],
    );
    w.run_for(SimDuration::from_secs(10));
    assert_eq!(log1.borrow().last().unwrap(), "committed");
    assert_eq!(
        log2.borrow().as_slice(),
        &[
            "began",
            &format!("err:{:?}", DiscError::LockTimeout),
            "aborted",
            "began",
            "value:1",
            "committed"
        ]
    );
}

#[test]
fn delete_is_backed_out_and_its_key_lock_persists() {
    let (mut w, n, catalog) = single_node();
    let log = drive(
        &mut w,
        n,
        0,
        catalog.clone(),
        vec![
            Step::Begin,
            Step::Insert("accounts", "doomed", "v"),
            Step::End,
            // delete it, then abort: the before-image resurrects it
            Step::Begin,
            Step::ReadLock("accounts", "doomed"),
            Step::Delete("accounts", "doomed"),
            Step::Read("accounts", "doomed"),
            Step::Abort,
            Step::Read("accounts", "doomed"),
        ],
    );
    w.run_for(SimDuration::from_secs(8));
    assert_eq!(
        log.borrow().as_slice(),
        &[
            "began",
            "ok",
            "committed",
            "began",
            "value:v",
            "ok",
            "value:<none>", // browse read sees the uncommitted delete
            "aborted",
            "value:v" // backout restored the record
        ]
    );
}

#[test]
fn file_lock_blocks_other_transactions_until_commit() {
    use encompass_storage::discprocess::DiscRequest;
    // a driver that takes a FILE lock via the raw submit API
    struct FileLocker {
        session: TmfSession,
        step: u8,
        log: Log,
    }
    impl Process for FileLocker {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            self.step = 1;
            self.session.begin(ctx, SessionOptions::default(), 0);
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _src: Pid, payload: Payload) {
            let Ok(Some(ev)) = self.session.accept(ctx, payload) else {
                return;
            };
            match (self.step, ev) {
                (1, SessionEvent::Began { .. }) => {
                    self.step = 2;
                    let transid = self.session.transid().unwrap();
                    self.session.submit(
                        ctx,
                        DiscRequest::LockFile {
                            file: "accounts".into(),
                            transid,
                            lock_wait: SimDuration::from_millis(200),
                        },
                        0,
                    );
                }
                (2, SessionEvent::OpDone { .. }) => {
                    self.log.borrow_mut().push("file-locked".into());
                    self.step = 3;
                    ctx.set_timer(SimDuration::from_millis(800), 1);
                }
                (4, SessionEvent::Committed { .. }) => {
                    self.log.borrow_mut().push("committed".into());
                }
                _ => {}
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerId, tag: u64) {
            if tag == 1 && self.step == 3 {
                self.step = 4;
                self.session.end(ctx, 0);
                return;
            }
            let _ = self.session.on_timer(ctx, tag);
        }
    }

    let (mut w, n, catalog) = single_node();
    let log1: Log = Rc::new(RefCell::new(Vec::new()));
    w.spawn(
        n,
        0,
        Box::new(FileLocker {
            session: TmfSession::new(catalog.clone(), 0),
            step: 0,
            log: log1.clone(),
        }),
    );
    w.run_for(SimDuration::from_millis(150));
    assert_eq!(log1.borrow().as_slice(), &["file-locked"]);
    // while the file lock is held, another transaction's record insert
    // into the same file times out
    let log2 = drive(
        &mut w,
        n,
        1,
        catalog.clone(),
        vec![Step::Begin, Step::Insert("accounts", "x", "1"), Step::Abort],
    );
    w.run_for(SimDuration::from_millis(650));
    assert_eq!(
        log2.borrow()[1],
        format!("err:{:?}", DiscError::LockTimeout),
        "{:?}",
        log2.borrow()
    );
    // after the locker commits, inserts flow again
    w.run_for(SimDuration::from_secs(5));
    assert_eq!(log1.borrow().last().unwrap(), "committed");
    let log3 = drive(
        &mut w,
        n,
        2,
        catalog,
        vec![Step::Begin, Step::Insert("accounts", "x", "1"), Step::End],
    );
    w.run_for(SimDuration::from_secs(5));
    assert_eq!(log3.borrow().last().unwrap(), "committed");
}

// ---------------------------------------------------------------------------
// Regressions for the commit-path in-doubt bug class: each of these drove a
// chaos-sweep invariant violation before its fix (see EXPERIMENTS.md).
// ---------------------------------------------------------------------------

/// A TMP primary that dies after writing the commit record but before its
/// phase-2 deliveries are acknowledged used to leak the transaction: the
/// terminal entry was dropped at the takeover and the in-flight deliveries
/// died with the primary, leaving remote locks held forever. Terminal
/// entries are now retained until every safe-delivery is acknowledged and
/// the new primary re-sends them (receivers are idempotent).
#[test]
fn tmp_takeover_after_commit_point_completes_distributed_commit() {
    let (mut w, [n0, _n1, n2], catalog) = three_nodes();
    let log = drive(
        &mut w,
        n0,
        0,
        catalog.clone(),
        vec![
            Step::Begin,
            Step::Insert("accounts", "alpha", "1"),
            Step::Insert("remote", "r", "2"),
            Step::End,
        ],
    );
    // run until the commit record hits the home monitor trail; the phase-2
    // deliveries to nodes 1 and 2 (>= 2ms away) are still in flight
    while w.metrics().get("tmf.commits") == 0 && w.now() < SimTime::from_micros(10_000_000) {
        w.run_for(SimDuration::from_millis(1));
    }
    assert_eq!(w.metrics().get("tmf.commits"), 1, "commit record written");
    let tmp_cpu = w.lookup_name(n0, "$TMP").expect("TMP registered").cpu;
    w.inject(Fault::KillCpu(n0, tmp_cpu));
    w.run_for(SimDuration::from_secs(2));
    w.inject(Fault::RestoreCpu(n0, tmp_cpu));
    w.run_for(SimDuration::from_secs(10));
    assert!(
        w.metrics().get("tmf.takeover_delivery_resends") >= 1,
        "the new primary re-sent the unacknowledged phase-2 deliveries"
    );
    assert_eq!(
        log.borrow().last().unwrap(),
        "committed",
        "END-TRANSACTION was answered after the takeover: {:?}",
        log.borrow()
    );
    // phase 2 landed on the remote participant: effects visible, lock free
    let log2 = drive(
        &mut w,
        n2,
        0,
        catalog,
        vec![Step::Begin, Step::ReadLock("remote", "r"), Step::Abort],
    );
    w.run_for(SimDuration::from_secs(5));
    assert_eq!(
        log2.borrow().as_slice(),
        &["began", "value:2", "aborted"],
        "remote record committed and unlocked"
    );
}

/// The narrower satellite window: the primary dies *after* forcing the
/// commit record to the Monitor Audit Trail but *before* its Ended
/// checkpoint reaches the backup, which therefore still sees Ending and
/// used to presume abort — backing out a committed transaction. It must
/// consult the trail instead and finish the commit. A double bus failure
/// holds the window open: the trail force is a timer plus a
/// stable-storage write and completes regardless, while the Ended
/// checkpoint is a cross-CPU send that fails with both buses down.
#[test]
fn tmp_takeover_between_commit_record_and_checkpoint_commits() {
    let (mut w, n, catalog) = single_node();
    let log = drive(
        &mut w,
        n,
        1,
        catalog.clone(),
        vec![
            Step::Begin,
            Step::Insert("accounts", "win", "1"),
            Step::End,
        ],
    );
    // the commit decision is taken: the trail force is scheduled and the
    // Ending checkpoint is already on (or past) the bus to the backup
    while w.metrics().get("tmf.monitor_forces") == 0 && w.now() < SimTime::from_micros(10_000_000) {
        w.run_for(SimDuration::from_micros(50));
    }
    assert_eq!(w.metrics().get("tmf.monitor_forces"), 1);
    let tmp_cpu = w.lookup_name(n, "$TMP").expect("TMP registered").cpu;
    w.inject(Fault::KillBus(n, 0));
    w.inject(Fault::KillBus(n, 1));
    while w.metrics().get("tmf.commits") == 0 && w.now() < SimTime::from_micros(10_000_000) {
        w.run_for(SimDuration::from_micros(50));
    }
    assert_eq!(w.metrics().get("tmf.commits"), 1);
    // the record is on the trail but the backup never saw Ended: kill the
    // primary in exactly that state, then let the buses come back
    w.inject(Fault::KillCpu(n, tmp_cpu));
    w.inject(Fault::HealBus(n, 0));
    w.inject(Fault::HealBus(n, 1));
    w.run_for(SimDuration::from_secs(2));
    w.inject(Fault::RestoreCpu(n, tmp_cpu));
    w.run_for(SimDuration::from_secs(10));
    assert!(
        w.metrics().get("tmf.takeover_commit_completions") >= 1,
        "the backup found the commit record on the trail"
    );
    assert_eq!(log.borrow().last().unwrap(), "committed", "{:?}", log.borrow());
    // the committed value survived (not backed out by a presumed abort)
    let log2 = drive(
        &mut w,
        n,
        2,
        catalog,
        vec![Step::Begin, Step::ReadLock("accounts", "win"), Step::Abort],
    );
    w.run_for(SimDuration::from_secs(5));
    assert_eq!(
        log2.borrow().as_slice(),
        &["began", "value:1", "aborted"],
        "value intact and lock free after the takeover commit"
    );
}

/// Unacknowledged lazy audit appends were pure primary-memory state: a
/// DISCPROCESS takeover dropped them, and a later backout read an audit
/// trail that was missing before-images, leaving the aborted update in
/// place. The images now ride the Applied checkpoint and the new primary
/// re-sends them (the AUDITPROCESS deduplicates).
#[test]
fn disc_takeover_mid_transaction_keeps_backout_images() {
    let (mut w, n, catalog) = single_node();
    let log1 = drive(
        &mut w,
        n,
        0,
        catalog.clone(),
        vec![Step::Begin, Step::Insert("accounts", "vic", "500"), Step::End],
    );
    w.run_for(SimDuration::from_secs(3));
    assert_eq!(log1.borrow().last().unwrap(), "committed");
    let log2 = drive(
        &mut w,
        n,
        1,
        catalog,
        vec![
            Step::Begin,
            Step::ReadLock("accounts", "vic"),
            Step::Update("accounts", "vic", "0"),
            Step::Pause(SimDuration::from_secs(2)), // disc dies in here
            Step::Abort,
            Step::Read("accounts", "vic"),
        ],
    );
    while log2.borrow().len() < 3 && w.now() < SimTime::from_micros(10_000_000) {
        w.run_for(SimDuration::from_millis(1));
    }
    assert_eq!(log2.borrow().len(), 3, "update applied: {:?}", log2.borrow());
    let disc_cpu = w.lookup_name(n, "$DATA").expect("disc registered").cpu;
    w.inject(Fault::KillCpu(n, disc_cpu));
    w.run_for(SimDuration::from_millis(500));
    w.inject(Fault::RestoreCpu(n, disc_cpu));
    w.run_for(SimDuration::from_secs(10));
    assert!(
        w.metrics().get("disc.takeover_image_resends") >= 1,
        "the new disc primary re-sent the retained images"
    );
    assert_eq!(
        log2.borrow().as_slice(),
        &["began", "value:500", "ok", "aborted", "value:500"],
        "backout found the before-image despite the takeover"
    );
}

/// An AUDITPROCESS takeover mid-transaction: the buffered (unforced) image
/// records are mirrored by per-append checkpoints, so phase 1's ForceTxn
/// against the new primary still lands every record on the trail.
#[test]
fn audit_takeover_mid_transaction_still_commits_durably() {
    let (mut w, n, catalog) = single_node();
    let log = drive(
        &mut w,
        n,
        2,
        catalog,
        vec![
            Step::Begin,
            Step::Insert("accounts", "aud", "7"),
            Step::Pause(SimDuration::from_secs(1)), // audit dies in here
            Step::End,
            Step::Read("accounts", "aud"),
        ],
    );
    while log.borrow().len() < 2 && w.now() < SimTime::from_micros(10_000_000) {
        w.run_for(SimDuration::from_millis(1));
    }
    assert_eq!(log.borrow().len(), 2, "insert applied: {:?}", log.borrow());
    let audit_cpu = w.lookup_name(n, "$AUDIT").expect("audit registered").cpu;
    w.inject(Fault::KillCpu(n, audit_cpu));
    w.run_for(SimDuration::from_millis(300));
    w.inject(Fault::RestoreCpu(n, audit_cpu));
    w.run_for(SimDuration::from_secs(10));
    assert!(w.metrics().get("audit.takeovers") >= 1);
    assert_eq!(
        log.borrow().as_slice(),
        &["began", "ok", "committed", "value:7"],
        "commit forced the checkpoint-surviving buffer to the trail"
    );
    assert_eq!(MonitorTrail::of(w.stable_mut(), n).commits(), 1);
}

/// Once a transaction reaches its commit or abort point the DISCPROCESS
/// fences its transid: a data operation that was still in flight (e.g. a
/// retry that raced the outcome) must not apply after backout read the
/// images, or the undo would silently be lost.
#[test]
fn late_write_with_stale_transid_is_fenced() {
    use encompass_storage::discprocess::DiscRequest;

    let (mut w, n, catalog) = single_node();
    let (log, transid) = drive_capturing(
        &mut w,
        n,
        0,
        catalog,
        vec![Step::Begin, Step::Insert("accounts", "fz", "1"), Step::End],
    );
    w.run_for(SimDuration::from_secs(3));
    assert_eq!(log.borrow().as_slice(), &["began", "ok", "committed"]);
    let stale = transid.borrow().expect("captured at Began");
    // a straggler write tagged with the completed transid is rejected, and
    // the committed value survives
    let replies = encompass_storage::testkit::run_script(
        &mut w,
        n,
        1,
        Target::Named(n, "$DATA".into()),
        vec![
            DiscRequest::Update {
                file: "accounts".into(),
                key: b("fz"),
                value: b("99"),
                transid: Some(stale),
            },
            DiscRequest::Read {
                file: "accounts".into(),
                key: b("fz"),
            },
        ],
    );
    w.run_for(SimDuration::from_secs(2));
    assert_eq!(
        replies.borrow().as_slice(),
        &[
            DiscReply::Err(DiscError::TxnFenced),
            DiscReply::Value(Some(b("1"))),
        ]
    );
}

/// A unilateral abort at a *non-home* participant used to answer the
/// requester with `Phase1Refused` (the reply meant for the home TMP's
/// phase-1 probe); the session waiter must get `Aborted`.
#[test]
fn nonhome_unilateral_abort_answers_aborted() {
    let (mut w, [n0, _n1, n2], catalog) = three_nodes();
    let (log, transid) = drive_capturing(
        &mut w,
        n0,
        0,
        catalog.clone(),
        vec![
            Step::Begin,
            Step::Insert("remote", "u9", "v"), // registers with node 2's TMP
            Step::Pause(SimDuration::from_secs(2)), // abort arrives in here
            Step::End,
            Step::Read("remote", "u9"),
        ],
    );
    while log.borrow().len() < 2 && w.now() < SimTime::from_micros(10_000_000) {
        w.run_for(SimDuration::from_millis(1));
    }
    assert_eq!(log.borrow().len(), 2, "insert landed: {:?}", log.borrow());
    let transid = transid.borrow().expect("captured at Began");
    // node 2 aborts unilaterally (it has not acked phase 1 yet)
    let reply = ask_tmp(
        &mut w,
        n2,
        0,
        TmpMsg::Abort {
            transid,
            reason: AbortReason::Voluntary,
        },
    );
    w.run_for(SimDuration::from_secs(2));
    assert_eq!(
        *reply.borrow(),
        Some(TmpReply::Aborted),
        "the non-home abort requester hears Aborted, not Phase1Refused"
    );
    // the unilateral abort forces network consensus: END at home aborts
    // everywhere and node 2's insert is gone
    w.run_for(SimDuration::from_secs(8));
    assert_eq!(
        log.borrow().as_slice(),
        &["began", "ok", "aborted", "value:<none>"],
        "consensus abort after the unilateral refusal"
    );
}

/// A late or retried `RegisterVolume` for a transid that already finished
/// used to `or_insert` a phantom Active entry that never terminated — an
/// entry leak with a wrong disposition. The Monitor Audit Trail is now
/// consulted for unknown transids.
#[test]
fn late_register_volume_after_completion_is_refused() {
    let (mut w, n, catalog) = single_node();
    let (log, transid) = drive_capturing(
        &mut w,
        n,
        0,
        catalog,
        vec![Step::Begin, Step::Insert("accounts", "rg", "1"), Step::End],
    );
    w.run_for(SimDuration::from_secs(3));
    assert_eq!(log.borrow().as_slice(), &["began", "ok", "committed"]);
    let transid = transid.borrow().expect("captured at Began");
    // a stale File System retry shows up after END-TRANSACTION completed
    let reply = ask_tmp(
        &mut w,
        n,
        1,
        TmpMsg::RegisterVolume {
            transid,
            volume: VolumeRef::new(n, "$DATA"),
        },
    );
    w.run_for(SimDuration::from_secs(2));
    assert_eq!(
        *reply.borrow(),
        Some(TmpReply::Failed),
        "registration against a completed transid is refused"
    );
    assert_eq!(w.metrics().get("tmf.register_after_completion"), 1);
    // and no phantom entry was resurrected
    let open = ask_tmp(&mut w, n, 1, TmpMsg::ListOpen);
    w.run_for(SimDuration::from_secs(2));
    assert_eq!(
        *open.borrow(),
        Some(TmpReply::Open {
            transids: Vec::new()
        }),
        "the transaction table is empty"
    );
}

/// Determinism is what makes a chaos seed a one-line repro, so it is an
/// invariant in its own right: the same fault timeline (a TMP-primary CPU
/// kill mid-transaction, a partition, restores and heals) must replay to
/// the identical trace hash.
#[test]
fn deterministic_run_with_cpu_failures() {
    fn run() -> u64 {
        let (mut w, [n0, _n1, n2], catalog) = three_nodes();
        let _ = drive(
            &mut w,
            n0,
            0,
            catalog,
            vec![
                Step::Begin,
                Step::Insert("accounts", "alpha", "1"),
                Step::Insert("remote", "r", "2"),
                Step::End,
            ],
        );
        // cpu 3 hosts node 0's TMP primary at spawn time
        w.schedule_fault(SimTime::from_micros(40_000), Fault::KillCpu(n0, CpuId(3)));
        w.schedule_fault(SimTime::from_micros(300_000), Fault::Partition(vec![n2]));
        w.schedule_fault(SimTime::from_micros(700_000), Fault::RestoreCpu(n0, CpuId(3)));
        w.schedule_fault(SimTime::from_micros(900_000), Fault::HealAllLinks);
        w.run_until(SimTime::from_micros(5_000_000));
        w.trace_hash()
    }
    assert_eq!(run(), run());
}

#[test]
fn deterministic_distributed_run() {
    fn run() -> u64 {
        let (mut w, [n0, _n1, n2], catalog) = three_nodes();
        let _ = drive(
            &mut w,
            n0,
            0,
            catalog,
            vec![
                Step::Begin,
                Step::Insert("accounts", "alpha", "1"),
                Step::Insert("remote", "r", "2"),
                Step::End,
            ],
        );
        w.schedule_fault(SimTime::from_micros(500_000), Fault::Partition(vec![n2]));
        w.schedule_fault(SimTime::from_micros(900_000), Fault::HealAllLinks);
        w.run_until(SimTime::from_micros(3_000_000));
        w.trace_hash()
    }
    assert_eq!(run(), run());
}

#[test]
fn abort_mid_boxcar_keeps_dispositions_separate() {
    // a commit record and an abort record ride the same monitor boxcar;
    // each transaction must get its own disposition, and the abort's
    // backout must not disturb the committed passenger
    let cfg = TmfNodeConfig::builder()
        .group_commit_window(SimDuration::from_millis(5))
        .build()
        .expect("valid tmf config");
    let (mut w, n, catalog) = single_node_with(cfg);
    let committer = drive(
        &mut w,
        n,
        0,
        catalog.clone(),
        vec![
            Step::Begin,
            Step::Insert("accounts", "carol", "100"),
            Step::End,
        ],
    );
    let aborter = drive(
        &mut w,
        n,
        1,
        catalog,
        vec![
            Step::Begin,
            Step::Insert("accounts", "dave", "50"),
            Step::Abort,
            Step::Read("accounts", "dave"),
        ],
    );
    w.run_for(SimDuration::from_secs(5));
    assert_eq!(committer.borrow().last().unwrap(), "committed");
    assert_eq!(
        aborter.borrow().as_slice(),
        &["began", "ok", "aborted", "value:<none>"],
        "dave's insert backed out"
    );
    assert_eq!(w.metrics().get("tmf.commits"), 1);
    assert_eq!(w.metrics().get("tmf.aborts"), 1);
    let trail = MonitorTrail::of(w.stable_mut(), n);
    assert_eq!(trail.commits(), 1);
    assert_eq!(trail.aborts(), 1);
    // the batched monitor path ran (the window knob reached the TMP)
    assert!(w.metrics().get("tmf.monitor_boxcar_size.count") >= 1);
}

#[test]
fn group_commit_window_batches_monitor_forces() {
    let cfg = TmfNodeConfig::builder()
        .group_commit_window(SimDuration::from_millis(10))
        .build()
        .expect("valid tmf config");
    let (mut w, n, catalog) = single_node_with(cfg);
    let mut logs = Vec::new();
    for (i, key) in ["a", "b", "c", "d"].iter().enumerate() {
        logs.push(drive(
            &mut w,
            n,
            i as u8,
            catalog.clone(),
            vec![Step::Begin, Step::Insert("accounts", key, "1"), Step::End],
        ));
    }
    w.run_for(SimDuration::from_secs(5));
    for log in &logs {
        assert_eq!(log.borrow().last().unwrap(), "committed");
    }
    assert_eq!(w.metrics().get("tmf.commits"), 4);
    // near-simultaneous commits share physical monitor forces
    let forces = w.metrics().get("tmf.monitor_forces");
    assert!(forces < 4, "expected boxcarring, got {forces} forces for 4 commits");
    assert_eq!(MonitorTrail::of(w.stable_mut(), n).commits(), 4);
}

/// A parked lock request that is retransmitted after a DISCPROCESS
/// takeover re-parks on the new primary; the replicated counted-waits set
/// must keep `disc.lock_waits` exact (one wait, not one per park).
#[test]
fn retransmitted_repark_counts_one_lock_wait() {
    let (mut w, n, catalog) = single_node();
    // T1 inserts "acct" (acquiring its record lock) and holds it across a
    // pause long enough for T2 to park and the disc primary to die
    let log1 = drive(
        &mut w,
        n,
        0,
        catalog.clone(),
        vec![
            Step::Begin,
            Step::Insert("accounts", "acct", "100"),
            Step::Pause(SimDuration::from_millis(600)),
            Step::End,
        ],
    );
    w.run_for(SimDuration::from_millis(200));
    // T2 queues behind T1's record lock
    let log2 = drive(
        &mut w,
        n,
        1,
        catalog.clone(),
        vec![
            Step::Begin,
            Step::ReadLock("accounts", "acct"),
            Step::Update("accounts", "acct", "200"),
            Step::End,
        ],
    );
    w.run_for(SimDuration::from_millis(150));
    assert_eq!(w.metrics().get("disc.lock_waits"), 1, "T2 parked once");
    // kill the disc primary mid-wait; the parked request dies with it,
    // T2's session retransmits, and the request re-parks on the backup
    let disc_cpu = w.lookup_name(n, "$DATA").expect("disc process").cpu;
    w.inject(Fault::KillCpu(n, disc_cpu));
    w.run_for(SimDuration::from_millis(150));
    w.inject(Fault::RestoreCpu(n, disc_cpu));
    w.run_for(SimDuration::from_secs(5));
    assert_eq!(log1.borrow().last().unwrap(), "committed");
    assert_eq!(
        log2.borrow().as_slice(),
        &["began", "value:100", "ok", "committed"],
        "T2 got the lock after T1 released it"
    );
    assert_eq!(
        w.metrics().get("disc.lock_waits"),
        1,
        "the retransmitted re-park must not count as a second wait"
    );
    assert_eq!(
        w.metrics().get("disc.fenced_lock_waits"),
        0,
        "no waiter was fenced in this run"
    );
}

#[test]
fn readonly_snapshot_commits_without_forces_and_is_not_blocked_by_writer() {
    let (mut w, n, catalog) = single_node();
    // committed baseline
    let log0 = drive(
        &mut w,
        n,
        0,
        catalog.clone(),
        vec![
            Step::Begin,
            Step::Insert("accounts", "alice", "100"),
            Step::End,
        ],
    );
    w.run_for(SimDuration::from_secs(3));
    assert_eq!(log0.borrow().last().unwrap(), "committed");
    let forces_before =
        w.metrics().get("tmf.monitor_forces") + w.metrics().get("audit.forces");
    // a writer takes the X lock on alice and sits on it mid-transaction
    let writer = drive(
        &mut w,
        n,
        1,
        catalog.clone(),
        vec![
            Step::Begin,
            Step::ReadLock("accounts", "alice"),
            Step::Update("accounts", "alice", "150"),
            Step::Pause(SimDuration::from_secs(2)),
            Step::End,
        ],
    );
    // a snapshot reader starts after the writer holds the lock; it must
    // read the committed value (100, not the dirty 150) without queueing
    let reader = drive_with(
        &mut w,
        n,
        2,
        catalog.clone(),
        SessionOptions::new().read_only(),
        vec![
            Step::Pause(SimDuration::from_millis(500)),
            Step::Begin,
            Step::Read("accounts", "alice"),
            Step::End,
        ],
    );
    w.run_for(SimDuration::from_secs(1));
    // the writer is still mid-pause, yet the reader has already committed
    assert_eq!(
        reader.borrow().as_slice(),
        &["began", "value:100", "committed"]
    );
    assert_eq!(w.metrics().get("tmf.readonly_commits"), 1);
    // the read-only END forced nothing on either trail
    assert_eq!(
        w.metrics().get("tmf.monitor_forces") + w.metrics().get("audit.forces"),
        forces_before,
        "read-only commit must not force a trail record"
    );
    // the writer finishes normally afterwards
    w.run_for(SimDuration::from_secs(3));
    assert_eq!(writer.borrow().last().unwrap(), "committed");
    assert_eq!(w.metrics().get("tmf.commits"), 3);
}

#[test]
fn locked_readonly_readers_share_the_lock() {
    let (mut w, n, catalog) = single_node();
    let log0 = drive(
        &mut w,
        n,
        0,
        catalog.clone(),
        vec![
            Step::Begin,
            Step::Insert("accounts", "bob", "500"),
            Step::End,
        ],
    );
    w.run_for(SimDuration::from_secs(3));
    assert_eq!(log0.borrow().last().unwrap(), "committed");
    // two locked-read-only sessions hold the same record lock at once —
    // shared mode is compatible with itself, so neither queues
    let ro = SessionOptions::new().read_only().locked_reads();
    let ra = drive_with(
        &mut w,
        n,
        1,
        catalog.clone(),
        ro,
        vec![
            Step::Begin,
            Step::Read("accounts", "bob"),
            Step::Pause(SimDuration::from_secs(1)),
            Step::End,
        ],
    );
    let rb = drive_with(
        &mut w,
        n,
        2,
        catalog.clone(),
        ro,
        vec![
            Step::Begin,
            Step::Read("accounts", "bob"),
            Step::Pause(SimDuration::from_secs(1)),
            Step::End,
        ],
    );
    w.run_for(SimDuration::from_millis(500));
    // both reads completed while both transactions are still open
    assert_eq!(ra.borrow().as_slice(), &["began", "value:500"]);
    assert_eq!(rb.borrow().as_slice(), &["began", "value:500"]);
    w.run_for(SimDuration::from_secs(3));
    assert_eq!(ra.borrow().last().unwrap(), "committed");
    assert_eq!(rb.borrow().last().unwrap(), "committed");
    assert_eq!(w.metrics().get("tmf.readonly_commits"), 2);
}

#[test]
fn locked_readonly_reader_blocks_writer_until_end() {
    let (mut w, n, catalog) = single_node();
    let log0 = drive(
        &mut w,
        n,
        0,
        catalog.clone(),
        vec![
            Step::Begin,
            Step::Insert("accounts", "carol", "7"),
            Step::End,
        ],
    );
    w.run_for(SimDuration::from_secs(3));
    assert_eq!(log0.borrow().last().unwrap(), "committed");
    // a locked reader pins a shared lock across a pause shorter than the
    // writer's 500ms lock wait: the writer queues, then is granted
    let reader = drive_with(
        &mut w,
        n,
        1,
        catalog.clone(),
        SessionOptions::new().read_only().locked_reads(),
        vec![
            Step::Begin,
            Step::Read("accounts", "carol"),
            Step::Pause(SimDuration::from_millis(400)),
            Step::End,
        ],
    );
    // the writer's exclusive lock request conflicts with the shared hold
    let writer = drive(
        &mut w,
        n,
        2,
        catalog.clone(),
        vec![
            Step::Pause(SimDuration::from_millis(100)),
            Step::Begin,
            Step::ReadLock("accounts", "carol"),
            Step::Update("accounts", "carol", "8"),
            Step::End,
        ],
    );
    w.run_for(SimDuration::from_millis(300));
    assert_eq!(reader.borrow().as_slice(), &["began", "value:7"]);
    // the writer is queued behind the shared lock: begun, nothing more
    assert_eq!(writer.borrow().as_slice(), &["began"]);
    w.run_for(SimDuration::from_secs(5));
    assert_eq!(reader.borrow().last().unwrap(), "committed");
    assert_eq!(writer.borrow().last().unwrap(), "committed");
    assert_eq!(w.metrics().get("tmf.readonly_commits"), 1);
}

#[test]
fn write_under_readonly_session_is_refused_synchronously() {
    let (mut w, n, catalog) = single_node();
    let log = drive_with(
        &mut w,
        n,
        0,
        catalog.clone(),
        SessionOptions::new().read_only(),
        vec![
            Step::Begin,
            Step::Insert("accounts", "eve", "1"),
            // the violation doesn't kill the transaction: a read still
            // works and END still commits (read-only, no forces)
            Step::Read("accounts", "eve"),
            Step::End,
        ],
    );
    w.run_for(SimDuration::from_secs(3));
    assert_eq!(
        log.borrow().as_slice(),
        &["began", "failed", "value:<none>", "committed"]
    );
    assert_eq!(w.metrics().get("tmf.readonly_violations"), 1);
    assert_eq!(w.metrics().get("tmf.readonly_commits"), 1);
    // nothing was inserted
    let check = drive(
        &mut w,
        n,
        1,
        catalog,
        vec![Step::Read("accounts", "eve")],
    );
    w.run_for(SimDuration::from_secs(2));
    assert_eq!(check.borrow().as_slice(), &["value:<none>"]);
}
