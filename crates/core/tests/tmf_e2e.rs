//! End-to-end TMF tests: full nodes (TMP + AUDITPROCESS + BACKOUTPROCESS +
//! DISCPROCESSes + transaction tables) driven by scripted transaction
//! programs, with faults injected at every interesting protocol point.

use bytes::Bytes;
use encompass_audit::monitor::MonitorTrail;
use encompass_sim::{
    Ctx, CpuId, Fault, NodeId, Payload, Pid, Process, SimConfig, SimDuration, SimTime, TimerId,
    World,
};
use encompass_storage::discprocess::{DiscError, DiscReply};
use encompass_storage::types::{FileDef, PartitionSpec, VolumeRef};
use encompass_storage::Catalog;
use tmf::facility::{spawn_tmf_network, TmfNodeConfig};
use tmf::session::{SessionEvent, TmfSession};
use tmf::state::AbortReason;
use std::cell::RefCell;
use std::rc::Rc;

fn b(s: &str) -> Bytes {
    Bytes::copy_from_slice(s.as_bytes())
}

/// One step of a scripted transaction program.
#[derive(Clone)]
enum Step {
    Begin,
    Read(&'static str, &'static str),
    ReadLock(&'static str, &'static str),
    Insert(&'static str, &'static str, &'static str),
    Update(&'static str, &'static str, &'static str),
    Delete(&'static str, &'static str),
    End,
    Abort,
    /// Idle for a duration (lets the driver line faults up between steps).
    Pause(SimDuration),
}

type Log = Rc<RefCell<Vec<String>>>;

struct TxnDriver {
    session: TmfSession,
    script: Vec<Step>,
    next: usize,
    log: Log,
}

impl TxnDriver {
    fn new(catalog: Catalog, script: Vec<Step>, log: Log) -> TxnDriver {
        TxnDriver {
            session: TmfSession::new(catalog, 0),
            script,
            next: 0,
            log,
        }
    }

    fn kick(&mut self, ctx: &mut Ctx<'_>) {
        if self.next < self.script.len() {
            let step = self.script[self.next].clone();
            self.next += 1;
            match step {
                Step::Begin => self.session.begin(ctx, 0),
                Step::Read(f, k) => self.session.read(ctx, f, b(k), 0),
                Step::ReadLock(f, k) => self.session.read_lock(ctx, f, b(k), 0),
                Step::Insert(f, k, v) => self.session.insert(ctx, f, b(k), b(v), 0),
                Step::Update(f, k, v) => self.session.update(ctx, f, b(k), b(v), 0),
                Step::Delete(f, k) => self.session.delete(ctx, f, b(k), 0),
                Step::End => self.session.end(ctx, 0),
                Step::Abort => self.session.abort(ctx, AbortReason::Voluntary, 0),
                Step::Pause(d) => {
                    ctx.set_timer(d, 1);
                }
            }
        }
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: SessionEvent) {
        let entry = match &ev {
            SessionEvent::Began { .. } => "began".to_string(),
            SessionEvent::OpDone { reply, .. } => match reply {
                DiscReply::Value(Some(v)) => {
                    format!("value:{}", String::from_utf8_lossy(v))
                }
                DiscReply::Value(None) => "value:<none>".to_string(),
                DiscReply::Ok => "ok".to_string(),
                DiscReply::Err(e) => format!("err:{e:?}"),
                other => format!("{other:?}"),
            },
            SessionEvent::Committed { .. } => "committed".to_string(),
            SessionEvent::Aborted { .. } => "aborted".to_string(),
            SessionEvent::Failed { .. } => "failed".to_string(),
        };
        self.log.borrow_mut().push(entry);
        self.kick(ctx);
    }
}

impl Process for TxnDriver {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.kick(ctx);
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, _src: Pid, payload: Payload) {
        if let Ok(Some(ev)) = self.session.accept(ctx, payload) {
            self.on_event(ctx, ev);
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerId, tag: u64) {
        if tag == 1 {
            self.kick(ctx);
            return;
        }
        if let Some(ev) = self.session.on_timer(ctx, tag) {
            self.on_event(ctx, ev);
        }
    }
    fn kind(&self) -> &'static str {
        "txn-driver"
    }
}

fn drive(world: &mut World, node: NodeId, cpu: u8, catalog: Catalog, script: Vec<Step>) -> Log {
    let log: Log = Rc::new(RefCell::new(Vec::new()));
    world.spawn(
        node,
        cpu,
        Box::new(TxnDriver::new(catalog, script, log.clone())),
    );
    log
}

/// One node, one volume, one audited file.
fn single_node() -> (World, NodeId, Catalog) {
    let mut w = World::new(SimConfig::default());
    let n = w.add_node(4);
    let mut catalog = Catalog::new();
    catalog.add(FileDef::key_sequenced("accounts", VolumeRef::new(n, "$DATA")));
    spawn_tmf_network(&mut w, &catalog, TmfNodeConfig::default());
    (w, n, catalog)
}

/// Three linked nodes; `accounts` partitioned across nodes 0 and 1, and a
/// `remote` file on node 2.
fn three_nodes() -> (World, [NodeId; 3], Catalog) {
    let mut w = World::new(SimConfig::default());
    let n0 = w.add_node(4);
    let n1 = w.add_node(4);
    let n2 = w.add_node(4);
    w.add_link(n0, n1, SimDuration::from_millis(2));
    w.add_link(n1, n2, SimDuration::from_millis(2));
    w.add_link(n0, n2, SimDuration::from_millis(5));
    let mut catalog = Catalog::new();
    catalog.add(
        FileDef::key_sequenced("accounts", VolumeRef::new(n0, "$D0")).partitioned(vec![
            PartitionSpec {
                low_key: Bytes::new(),
                volume: VolumeRef::new(n0, "$D0"),
            },
            PartitionSpec {
                low_key: b("m"),
                volume: VolumeRef::new(n1, "$D1"),
            },
        ]),
    );
    catalog.add(FileDef::key_sequenced("remote", VolumeRef::new(n2, "$D2")));
    spawn_tmf_network(&mut w, &catalog, TmfNodeConfig::default());
    (w, [n0, n1, n2], catalog)
}

#[test]
fn single_node_commit() {
    let (mut w, n, catalog) = single_node();
    let log = drive(
        &mut w,
        n,
        0,
        catalog,
        vec![
            Step::Begin,
            Step::Insert("accounts", "alice", "100"),
            Step::Update("accounts", "alice", "150"),
            Step::End,
            Step::Read("accounts", "alice"),
        ],
    );
    w.run_for(SimDuration::from_secs(5));
    assert_eq!(
        log.borrow().as_slice(),
        &["began", "ok", "ok", "committed", "value:150"]
    );
    assert_eq!(w.metrics().get("tmf.commits"), 1);
    // the commit record is on the monitor trail
    assert_eq!(MonitorTrail::of(w.stable_mut(), n).commits(), 1);
}

#[test]
fn voluntary_abort_backs_out_updates() {
    let (mut w, n, catalog) = single_node();
    // committed baseline
    let log1 = drive(
        &mut w,
        n,
        0,
        catalog.clone(),
        vec![
            Step::Begin,
            Step::Insert("accounts", "bob", "500"),
            Step::End,
        ],
    );
    w.run_for(SimDuration::from_secs(3));
    assert_eq!(log1.borrow().last().unwrap(), "committed");
    // update then ABORT-TRANSACTION
    let log2 = drive(
        &mut w,
        n,
        1,
        catalog.clone(),
        vec![
            Step::Begin,
            Step::ReadLock("accounts", "bob"),
            Step::Update("accounts", "bob", "0"),
            Step::Abort,
            Step::Read("accounts", "bob"),
        ],
    );
    w.run_for(SimDuration::from_secs(5));
    assert_eq!(
        log2.borrow().as_slice(),
        &["began", "value:500", "ok", "aborted", "value:500"],
        "backout restored the before-image"
    );
    assert_eq!(w.metrics().get("tmf.aborts"), 1);
    assert!(w.metrics().get("backout.completed") >= 1);
    assert_eq!(MonitorTrail::of(w.stable_mut(), n).aborts(), 1);
}

#[test]
fn distributed_commit_across_three_nodes() {
    let (mut w, [n0, _n1, _n2], catalog) = three_nodes();
    let log = drive(
        &mut w,
        n0,
        0,
        catalog,
        vec![
            Step::Begin,
            Step::Insert("accounts", "alpha", "1"), // node 0 partition
            Step::Insert("accounts", "zulu", "2"),  // node 1 partition
            Step::Insert("remote", "r1", "3"),      // node 2
            Step::End,
            Step::Read("accounts", "zulu"),
            Step::Read("remote", "r1"),
        ],
    );
    w.run_for(SimDuration::from_secs(10));
    assert_eq!(
        log.borrow().as_slice(),
        &["began", "ok", "ok", "ok", "committed", "value:2", "value:3"]
    );
    // remote begins went to two nodes; phase 1 fanned out over the network
    assert_eq!(w.metrics().get("tmf.msgs.remote_begin"), 2);
    assert_eq!(w.metrics().get("tmf.msgs.phase1_net"), 2);
    assert_eq!(w.metrics().get("tmf.msgs.phase2_net"), 2);
    assert_eq!(w.metrics().get("tmf.commits"), 1);
}

#[test]
fn partition_before_phase_one_aborts_everywhere() {
    let (mut w, [n0, _n1, n2], catalog) = three_nodes();
    let log = drive(
        &mut w,
        n0,
        0,
        catalog,
        vec![
            Step::Begin,
            Step::Insert("accounts", "alpha", "1"),
            Step::Insert("remote", "r1", "3"),
            Step::Pause(SimDuration::from_millis(500)),
            Step::End,
            Step::Read("accounts", "alpha"),
        ],
    );
    // cut node 2 off after its insert landed but before END-TRANSACTION
    // (the driver pauses 500ms between the last insert and END)
    while log.borrow().len() < 3 && w.now() < SimTime::from_micros(10_000_000) {
        w.run_for(SimDuration::from_millis(1));
    }
    assert_eq!(log.borrow().len(), 3, "both inserts landed: {:?}", log.borrow());
    w.inject(Fault::Partition(vec![n2]));
    // wait for END + abort to play out
    w.run_for(SimDuration::from_secs(10));
    assert_eq!(
        log.borrow().as_slice(),
        &["began", "ok", "ok", "aborted", "value:<none>"],
        "phase-one failure backed out node 0's insert too"
    );
    assert_eq!(w.metrics().get("tmf.commits"), 0);
    // node 2 is still partitioned; its abort arrives when the partition
    // heals (safe delivery)
    w.inject(Fault::HealAllLinks);
    w.run_for(SimDuration::from_secs(10));
    let log2 = drive(
        &mut w,
        n0,
        1,
        {
            let mut c = Catalog::new();
            c.add(FileDef::key_sequenced("remote", VolumeRef::new(n2, "$D2")));
            c
        },
        vec![Step::Read("remote", "r1")],
    );
    w.run_for(SimDuration::from_secs(5));
    assert_eq!(
        log2.borrow().as_slice(),
        &["value:<none>"],
        "node 2's insert was backed out after the heal"
    );
}

#[test]
fn partition_during_phase_two_holds_locks_until_heal() {
    let (mut w, [n0, _n1, n2], catalog) = three_nodes();
    let log = drive(
        &mut w,
        n0,
        0,
        catalog.clone(),
        vec![
            Step::Begin,
            Step::Insert("remote", "r2", "v"),
            Step::End,
        ],
    );
    // partition node 2 right after the commit record is written: node 2
    // has acknowledged phase one, and phase 2 is safe-delivery, so
    // END-TRANSACTION still completes on the home node while node 2's
    // locks stay held until the heal. Run until the commit record is
    // written (the metric flips), then cut.
    while w.metrics().get("tmf.commits") == 0 && w.now() < SimTime::from_micros(10_000_000) {
        w.run_for(SimDuration::from_millis(1));
    }
    assert_eq!(w.metrics().get("tmf.commits"), 1, "transaction committed");
    w.inject(Fault::Partition(vec![n2]));
    w.run_for(SimDuration::from_secs(2));
    assert_eq!(
        log.borrow().as_slice(),
        &["began", "ok", "committed"],
        "END-TRANSACTION completed despite the phase-2 partition"
    );
    // while partitioned, the record on node 2 is still locked: another
    // transaction's lock attempt times out
    let probe_catalog = catalog.clone();
    let log2 = drive(
        &mut w,
        n2,
        0,
        probe_catalog,
        vec![Step::Begin, Step::ReadLock("remote", "r2"), Step::Abort],
    );
    w.run_for(SimDuration::from_secs(3));
    assert_eq!(
        log2.borrow()[1],
        format!("err:{:?}", DiscError::LockTimeout),
        "locks held on the cut-off node: {:?}",
        log2.borrow()
    );
    // heal: safe-delivery phase 2 arrives, locks release
    w.inject(Fault::HealAllLinks);
    w.run_for(SimDuration::from_secs(3));
    let log3 = drive(
        &mut w,
        n2,
        1,
        catalog,
        vec![Step::Begin, Step::ReadLock("remote", "r2"), Step::Abort],
    );
    w.run_for(SimDuration::from_secs(3));
    assert_eq!(
        log3.borrow().as_slice(),
        &["began", "value:v", "aborted"],
        "after the heal the lock is free and the commit is visible"
    );
}

#[test]
fn cpu_failure_aborts_only_affected_transactions() {
    let (mut w, n, catalog) = single_node();
    // transaction A runs on cpu 0 and stays open
    let log_a = drive(
        &mut w,
        n,
        0,
        catalog.clone(),
        vec![
            Step::Begin,
            Step::Insert("accounts", "a", "1"),
            Step::Pause(SimDuration::from_secs(10)), // still open when cpu dies
            Step::End,
        ],
    );
    // transaction B runs on cpu 2 and also stays open across the failure
    let log_b = drive(
        &mut w,
        n,
        2,
        catalog.clone(),
        vec![
            Step::Begin,
            Step::Insert("accounts", "b", "2"),
            Step::Pause(SimDuration::from_secs(10)),
            Step::End,
        ],
    );
    w.run_for(SimDuration::from_secs(2));
    // kill cpu 0: A's requester dies with it
    w.inject(Fault::KillCpu(n, CpuId(0)));
    w.run_for(SimDuration::from_secs(15));
    assert!(log_a.borrow().len() <= 2, "A never completed: {:?}", log_a.borrow());
    assert_eq!(
        log_b.borrow().last().unwrap(),
        "committed",
        "B was uninvolved in the failure and committed: {:?}",
        log_b.borrow()
    );
    assert!(w.metrics().get("tmf.cpu_failure_aborts") >= 1);
    // A's insert was backed out
    let log_c = drive(
        &mut w,
        n,
        3,
        catalog,
        vec![Step::Read("accounts", "a"), Step::Read("accounts", "b")],
    );
    w.run_for(SimDuration::from_secs(3));
    assert_eq!(log_c.borrow().as_slice(), &["value:<none>", "value:2"]);
}

#[test]
fn lock_timeout_then_restart_transaction_succeeds() {
    let (mut w, n, catalog) = single_node();
    // T1 holds the lock for a while
    let log1 = drive(
        &mut w,
        n,
        0,
        catalog.clone(),
        vec![
            Step::Begin,
            Step::Insert("accounts", "hot", "1"),
            Step::Pause(SimDuration::from_secs(2)),
            Step::End,
        ],
    );
    w.run_for(SimDuration::from_millis(200));
    // T2 wants the same record; its lock wait (500ms) times out, it
    // restarts (abort + begin again), and succeeds after T1 commits
    let log2 = drive(
        &mut w,
        n,
        1,
        catalog,
        vec![
            Step::Begin,
            Step::ReadLock("accounts", "hot"),
            // first attempt will log err:LockTimeout; the driver script is
            // linear, so model RESTART-TRANSACTION explicitly:
            Step::Abort,
            Step::Pause(SimDuration::from_secs(3)),
            Step::Begin,
            Step::ReadLock("accounts", "hot"),
            Step::End,
        ],
    );
    w.run_for(SimDuration::from_secs(10));
    assert_eq!(log1.borrow().last().unwrap(), "committed");
    assert_eq!(
        log2.borrow().as_slice(),
        &[
            "began",
            &format!("err:{:?}", DiscError::LockTimeout),
            "aborted",
            "began",
            "value:1",
            "committed"
        ]
    );
}

#[test]
fn delete_is_backed_out_and_its_key_lock_persists() {
    let (mut w, n, catalog) = single_node();
    let log = drive(
        &mut w,
        n,
        0,
        catalog.clone(),
        vec![
            Step::Begin,
            Step::Insert("accounts", "doomed", "v"),
            Step::End,
            // delete it, then abort: the before-image resurrects it
            Step::Begin,
            Step::ReadLock("accounts", "doomed"),
            Step::Delete("accounts", "doomed"),
            Step::Read("accounts", "doomed"),
            Step::Abort,
            Step::Read("accounts", "doomed"),
        ],
    );
    w.run_for(SimDuration::from_secs(8));
    assert_eq!(
        log.borrow().as_slice(),
        &[
            "began",
            "ok",
            "committed",
            "began",
            "value:v",
            "ok",
            "value:<none>", // browse read sees the uncommitted delete
            "aborted",
            "value:v" // backout restored the record
        ]
    );
}

#[test]
fn file_lock_blocks_other_transactions_until_commit() {
    use encompass_storage::discprocess::DiscRequest;
    // a driver that takes a FILE lock via the raw submit API
    struct FileLocker {
        session: TmfSession,
        step: u8,
        log: Log,
    }
    impl Process for FileLocker {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            self.step = 1;
            self.session.begin(ctx, 0);
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _src: Pid, payload: Payload) {
            let Ok(Some(ev)) = self.session.accept(ctx, payload) else {
                return;
            };
            match (self.step, ev) {
                (1, SessionEvent::Began { .. }) => {
                    self.step = 2;
                    let transid = self.session.transid().unwrap();
                    self.session.submit(
                        ctx,
                        DiscRequest::LockFile {
                            file: "accounts".into(),
                            transid,
                            lock_wait: SimDuration::from_millis(200),
                        },
                        0,
                    );
                }
                (2, SessionEvent::OpDone { .. }) => {
                    self.log.borrow_mut().push("file-locked".into());
                    self.step = 3;
                    ctx.set_timer(SimDuration::from_millis(800), 1);
                }
                (4, SessionEvent::Committed { .. }) => {
                    self.log.borrow_mut().push("committed".into());
                }
                _ => {}
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerId, tag: u64) {
            if tag == 1 && self.step == 3 {
                self.step = 4;
                self.session.end(ctx, 0);
                return;
            }
            let _ = self.session.on_timer(ctx, tag);
        }
    }

    let (mut w, n, catalog) = single_node();
    let log1: Log = Rc::new(RefCell::new(Vec::new()));
    w.spawn(
        n,
        0,
        Box::new(FileLocker {
            session: TmfSession::new(catalog.clone(), 0),
            step: 0,
            log: log1.clone(),
        }),
    );
    w.run_for(SimDuration::from_millis(150));
    assert_eq!(log1.borrow().as_slice(), &["file-locked"]);
    // while the file lock is held, another transaction's record insert
    // into the same file times out
    let log2 = drive(
        &mut w,
        n,
        1,
        catalog.clone(),
        vec![Step::Begin, Step::Insert("accounts", "x", "1"), Step::Abort],
    );
    w.run_for(SimDuration::from_millis(650));
    assert_eq!(
        log2.borrow()[1],
        format!("err:{:?}", DiscError::LockTimeout),
        "{:?}",
        log2.borrow()
    );
    // after the locker commits, inserts flow again
    w.run_for(SimDuration::from_secs(5));
    assert_eq!(log1.borrow().last().unwrap(), "committed");
    let log3 = drive(
        &mut w,
        n,
        2,
        catalog,
        vec![Step::Begin, Step::Insert("accounts", "x", "1"), Step::End],
    );
    w.run_for(SimDuration::from_secs(5));
    assert_eq!(log3.borrow().last().unwrap(), "committed");
}

#[test]
fn deterministic_distributed_run() {
    fn run() -> u64 {
        let (mut w, [n0, _n1, n2], catalog) = three_nodes();
        let _ = drive(
            &mut w,
            n0,
            0,
            catalog,
            vec![
                Step::Begin,
                Step::Insert("accounts", "alpha", "1"),
                Step::Insert("remote", "r", "2"),
                Step::End,
            ],
        );
        w.schedule_fault(SimTime::from_micros(500_000), Fault::Partition(vec![n2]));
        w.schedule_fault(SimTime::from_micros(900_000), Fault::HealAllLinks);
        w.run_until(SimTime::from_micros(3_000_000));
        w.trace_hash()
    }
    assert_eq!(run(), run());
}
