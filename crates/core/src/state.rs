//! The transaction state machine (Figure 3 of the paper, refined).
//!
//! ```text
//!            BEGIN
//!              │
//!              ▼        END (phase one)           (decision durable)
//!           ACTIVE ───────────────────► ENDING ──────► COMMITTING
//!              │                           │                │ commit record
//!              │ FAILURE / ABORT           │ FAILURE        │ forced
//!              ▼                           ▼                ▼
//!           ABORTING ──────────────────► ABORTED          ENDED
//!                         (backout)
//! ```
//!
//! "Aborting" and "ending" are parallel states, as are "aborted" and
//! "ended". Once "ended" or "aborted" completes, the transid leaves the
//! system.
//!
//! COMMITTING refines the paper's "ending" state (see DESIGN.md §D12): the
//! home TMP enters it when every phase-one participant has forced its
//! audit images and the commit decision has been checkpointed to the
//! backup. From COMMITTING the only exit is ENDED — an abort can no longer
//! overtake the commit — which is what licenses releasing record locks
//! while the commit record's monitor-trail force is still spinning.

use std::fmt;

/// The states of Figure 3, plus the committing refinement of "ending".
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TxState {
    /// After BEGIN-TRANSACTION, before commit or abort is requested.
    Active,
    /// Phase one of commit: audit records being forced to the trails.
    Ending,
    /// Home only: phase one complete, commit decision checkpointed, commit
    /// record queued for the monitor trail. Locks may release; an abort
    /// can no longer win.
    Committing,
    /// The commit record is on the Monitor Audit Trail; locks being
    /// released (phase two). Terminal.
    Ended,
    /// The decision to back out has been taken; backout in progress.
    Aborting,
    /// Backout complete; locks being released. Terminal.
    Aborted,
}

impl TxState {
    /// The legal next states (Figure 3's edges, with ENDING → ENDED split
    /// through COMMITTING on the home-commit path; the direct edge remains
    /// for non-home nodes applying a received disposition).
    pub fn successors(self) -> &'static [TxState] {
        match self {
            TxState::Active => &[TxState::Ending, TxState::Aborting],
            TxState::Ending => &[TxState::Committing, TxState::Ended, TxState::Aborting],
            TxState::Committing => &[TxState::Ended],
            TxState::Ended => &[],
            TxState::Aborting => &[TxState::Aborted],
            TxState::Aborted => &[],
        }
    }

    /// Is `next` a legal transition from `self`?
    pub fn can_become(self, next: TxState) -> bool {
        self.successors().contains(&next)
    }

    /// Terminal states: the transid leaves the system after these.
    pub fn is_terminal(self) -> bool {
        matches!(self, TxState::Ended | TxState::Aborted)
    }

    /// All states, for exhaustive enumeration (experiment F3).
    pub fn all() -> [TxState; 6] {
        [
            TxState::Active,
            TxState::Ending,
            TxState::Committing,
            TxState::Ended,
            TxState::Aborting,
            TxState::Aborted,
        ]
    }
}

impl fmt::Display for TxState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TxState::Active => "active",
            TxState::Ending => "ending",
            TxState::Committing => "committing",
            TxState::Ended => "ended",
            TxState::Aborting => "aborting",
            TxState::Aborted => "aborted",
        };
        f.write_str(s)
    }
}

/// What a transaction declared about itself at BEGIN-TRANSACTION.
///
/// Read-write is the paper's transaction: it registers volumes, writes
/// audit images, and commits through two-phase END. A read-only
/// transaction promises to issue no writes; TMF exploits the promise by
/// resolving END-TRANSACTION locally at the home TMP — no phase one, no
/// forced commit record — because a transaction with no after-images has
/// nothing to make durable (DESIGN.md §D13).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum TxnClass {
    /// May read and write; commits through the full two-phase protocol.
    #[default]
    ReadWrite,
    /// Promises not to write. Reads run under shared locks or against a
    /// snapshot fence; END-TRANSACTION resolves locally without a forced
    /// monitor record.
    ReadOnly,
}

impl fmt::Display for TxnClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TxnClass::ReadWrite => "read-write",
            TxnClass::ReadOnly => "read-only",
        };
        f.write_str(s)
    }
}

/// Why a transaction was aborted — the paper's causes of automatic abort
/// plus the voluntary verbs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AbortReason {
    /// ABORT-TRANSACTION: the application decided to back out, without
    /// automatic restart.
    Voluntary,
    /// RESTART-TRANSACTION: transient problem (e.g. lock timeout /
    /// presumed deadlock); back out and restart at BEGIN-TRANSACTION.
    Restart,
    /// Failure of the processor hosting the requester (primary TCP) or a
    /// server working on the transaction.
    CpuFailure,
    /// Complete loss of communication with a participating node.
    NetworkPartition,
    /// A participating node was inaccessible or refused at phase one.
    Phase1Failure,
    /// An operator forced the disposition (the manual override).
    OperatorOverride,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_3_edges_exactly() {
        use TxState::*;
        let expect = [
            (Active, vec![Ending, Aborting]),
            (Ending, vec![Committing, Ended, Aborting]),
            (Committing, vec![Ended]),
            (Ended, vec![]),
            (Aborting, vec![Aborted]),
            (Aborted, vec![]),
        ];
        for (s, succ) in expect {
            assert_eq!(s.successors(), succ.as_slice(), "{s}");
        }
    }

    #[test]
    fn committing_cannot_abort() {
        // the committing refinement exists precisely so locks can release
        // before the commit record's force completes: once entered, no
        // abort path may win
        assert!(!TxState::Committing.can_become(TxState::Aborting));
        assert!(!TxState::Committing.can_become(TxState::Aborted));
        assert!(TxState::Committing.can_become(TxState::Ended));
    }

    #[test]
    fn terminality() {
        assert!(TxState::Ended.is_terminal());
        assert!(TxState::Aborted.is_terminal());
        assert!(!TxState::Active.is_terminal());
        assert!(!TxState::Ending.is_terminal());
        assert!(!TxState::Committing.is_terminal());
        assert!(!TxState::Aborting.is_terminal());
    }

    #[test]
    fn reachability_from_active_covers_all_states() {
        // BFS over the transition graph reaches every state
        let mut seen = vec![TxState::Active];
        let mut frontier = vec![TxState::Active];
        while let Some(s) = frontier.pop() {
            for &n in s.successors() {
                if !seen.contains(&n) {
                    seen.push(n);
                    frontier.push(n);
                }
            }
        }
        assert_eq!(seen.len(), TxState::all().len());
    }

    #[test]
    fn no_transition_out_of_terminal_states() {
        for s in TxState::all() {
            if s.is_terminal() {
                for n in TxState::all() {
                    assert!(!s.can_become(n));
                }
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(TxState::Active.to_string(), "active");
        assert_eq!(TxState::Aborting.to_string(), "aborting");
    }
}
