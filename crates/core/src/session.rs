//! The application-side File System extension for TMF.
//!
//! In real ENCOMPASS the File System transparently appends the *current
//! process transid* to every interprocess request, notifies the TMP before
//! the first transmission of a transid to a remote node, and routes
//! data-base requests to the DISCPROCESS owning the key's partition. The
//! [`TmfSession`] struct packages those duties for a simulated process:
//!
//! * `begin` / `end` / `abort` implement the Screen COBOL verbs against
//!   the *home* TMP;
//! * `adopt` sets the current process transid from an incoming request
//!   (the server side of a SEND);
//! * the data-base operations resolve the partition from the catalog,
//!   perform **remote transaction begin** and **volume registration**
//!   bookkeeping with the TMPs, and then issue the request to the right
//!   DISCPROCESS.
//!
//! The session is deliberately single-outstanding-operation: the paper's
//! servers are "simple and single-threaded: (1) read the transaction
//! request message; (2) perform the data base function requested;
//! (3) reply".

use crate::state::TxnClass;
use crate::tmp::{TmpMsg, TmpReply};
use bytes::Bytes;
use encompass_sim::{Ctx, FlightCause, NodeId, Payload, SimDuration};
use encompass_storage::discprocess::{DiscReply, DiscRequest};
use encompass_storage::locks::LockMode;
use encompass_storage::types::{Transid, VolumeRef};
use encompass_storage::Catalog;
use guardian::{Rpc, Target, TimerOutcome};
use std::collections::{BTreeMap, HashSet};

/// How a transaction wants to run, declared at BEGIN-TRANSACTION and
/// carried to every server that adopts the transid.
///
/// The default is the paper's read-write transaction. `read_only()`
/// declares the no-write promise; by default a read-only transaction reads
/// *snapshots* (no record locks at all — each volume serves the value as
/// of a pinned before-image fence), while `locked_reads()` downgrades it
/// to shared record locks for applications that want to block writers
/// instead of reading slightly-stale data.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SessionOptions {
    class: TxnClass,
    locked_reads: bool,
}

impl SessionOptions {
    pub fn new() -> SessionOptions {
        SessionOptions::default()
    }

    /// Declare the transaction read-only: writes are refused with
    /// [`SessionError::ReadOnlyViolation`] and END-TRANSACTION resolves
    /// locally at the home TMP (no phase one, no forced commit record).
    pub fn read_only(mut self) -> SessionOptions {
        self.class = TxnClass::ReadOnly;
        self
    }

    /// Read under shared record locks instead of against a snapshot fence
    /// (only meaningful combined with [`SessionOptions::read_only`]).
    pub fn locked_reads(mut self) -> SessionOptions {
        self.locked_reads = true;
        self
    }

    pub fn class(&self) -> TxnClass {
        self.class
    }

    /// Does this transaction read snapshots (no record locks)?
    pub fn snapshot_reads(&self) -> bool {
        match self.class {
            TxnClass::ReadOnly => !self.locked_reads,
            TxnClass::ReadWrite => false,
        }
    }
}

/// A typed data-base request — the File System surface a server step may
/// issue against the session. One enum value replaces the historical
/// per-verb method zoo, so callers build requests as data and hand them
/// to [`TmfSession::op`].
#[derive(Clone, Debug)]
pub enum DbOp {
    Read { file: String, key: Bytes },
    ReadLock { file: String, key: Bytes },
    Insert { file: String, key: Bytes, value: Bytes },
    Update { file: String, key: Bytes, value: Bytes },
    Delete { file: String, key: Bytes },
    InsertEntry { file: String, value: Bytes },
    ReadRange { file: String, low: Bytes, high: Option<Bytes>, limit: usize },
}

/// Why a session operation failed. Delivered in
/// [`SessionEvent::Failed`] — the single failure path for every verb and
/// data-base operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionError {
    /// Every retry of the underlying request timed out.
    Timeout,
    /// The TMP refused the operation (remote node unreachable, volume
    /// registration after completion, or phase-one refusal).
    Refused,
    /// A reply arrived that does not answer the pending operation — a
    /// protocol-level surprise; abort and restart the transaction.
    Protocol,
    /// A write operation was issued under a transaction that declared
    /// itself read-only at BEGIN-TRANSACTION. Reported synchronously —
    /// nothing was sent to any DISCPROCESS.
    ReadOnlyViolation,
}

/// What a session operation produced.
#[derive(Debug)]
pub enum SessionEvent {
    /// `begin` completed.
    Began { transid: Transid, cookie: u64 },
    /// A data-base operation completed.
    OpDone { reply: DiscReply, cookie: u64 },
    /// `end` completed with a commit.
    Committed { cookie: u64 },
    /// `end`/`abort` completed with an abort (the transaction's updates
    /// were backed out).
    Aborted { cookie: u64 },
    /// The operation could not be carried out; `error` says why. The
    /// caller should abort or restart the transaction.
    Failed { error: SessionError, cookie: u64 },
}

impl SessionEvent {
    pub fn cookie(&self) -> u64 {
        match self {
            SessionEvent::Began { cookie, .. }
            | SessionEvent::OpDone { cookie, .. }
            | SessionEvent::Committed { cookie }
            | SessionEvent::Aborted { cookie }
            | SessionEvent::Failed { cookie, .. } => *cookie,
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Stage {
    EnsureRemote,
    Register,
    Execute,
    TmpVerb,
    /// A bare remote-begin before a SEND to a remote server (no data op).
    EnsureOnly,
}

struct Pending {
    cookie: u64,
    op: Option<DiscRequest>,
    volume: Option<VolumeRef>,
    stage: Stage,
    /// Does this op transmit the transid (and therefore need the
    /// remote-begin and volume-registration stages)? Snapshot reads carry
    /// no transid — the TMP never hears about the volumes they touch.
    register: bool,
}

/// Per-process TMF session state.
pub struct TmfSession {
    catalog: Catalog,
    tmp_rpc: Rpc<TmpMsg, TmpReply>,
    disc_rpc: Rpc<DiscRequest, DiscReply>,
    current: Option<Transid>,
    options: SessionOptions,
    registered_volumes: HashSet<VolumeRef>,
    ensured_nodes: HashSet<NodeId>,
    /// Per-volume snapshot fences of the current read-only transaction:
    /// the first snapshot read against a volume pins that volume's
    /// before-image sequence and every later read reuses it, so the
    /// transaction sees one consistent cut per volume. (BTreeMap for
    /// deterministic debug output; never iterated on the hot path.)
    snapshot_fences: BTreeMap<VolumeRef, u64>,
    pending: Option<Pending>,
    /// Default lock-wait (deadlock timeout) attached to lock requests.
    pub lock_wait: SimDuration,
    /// Per-attempt timeout of requests.
    pub attempt_timeout: SimDuration,
    /// Retries before an operation is reported as Failed.
    pub retries: u32,
}

impl TmfSession {
    /// `id_space` must be distinct among `Rpc` users within one process.
    pub fn new(catalog: Catalog, id_space: u64) -> TmfSession {
        TmfSession {
            catalog,
            tmp_rpc: Rpc::new(32 + id_space * 2),
            disc_rpc: Rpc::new(33 + id_space * 2),
            current: None,
            options: SessionOptions::default(),
            registered_volumes: HashSet::new(),
            ensured_nodes: HashSet::new(),
            snapshot_fences: BTreeMap::new(),
            pending: None,
            lock_wait: SimDuration::from_millis(500),
            attempt_timeout: SimDuration::from_millis(300),
            retries: 10,
        }
    }

    /// The current process transid, if in transaction mode.
    pub fn transid(&self) -> Option<Transid> {
        self.current
    }

    /// Is an operation outstanding?
    pub fn busy(&self) -> bool {
        self.pending.is_some()
    }

    /// The options the current transaction was begun (or adopted) with.
    pub fn options(&self) -> SessionOptions {
        self.options
    }

    /// Adopt a transid delivered with an incoming request (server side);
    /// the File System made it the "current process transid". The
    /// requester's [`SessionOptions`] ride along with the transid so the
    /// server's reads run in the transaction's declared mode.
    pub fn adopt(&mut self, transid: Transid, options: SessionOptions) {
        self.current = Some(transid);
        self.options = options;
        self.registered_volumes.clear();
        self.ensured_nodes.clear();
        self.snapshot_fences.clear();
    }

    /// Drop transaction mode without talking to the TMP (a context-free
    /// server finishing a request).
    pub fn clear(&mut self) {
        debug_assert!(self.pending.is_none(), "clear() while an op is pending");
        self.current = None;
        self.options = SessionOptions::default();
        self.registered_volumes.clear();
        self.ensured_nodes.clear();
        self.snapshot_fences.clear();
    }

    // ------------------------------------------------------------------
    // Verbs
    // ------------------------------------------------------------------

    /// BEGIN-TRANSACTION. The [`SessionOptions`] declare the transaction's
    /// class for its whole life; `SessionOptions::default()` is the plain
    /// read-write transaction.
    pub fn begin(&mut self, ctx: &mut Ctx<'_>, options: SessionOptions, cookie: u64) {
        assert!(self.pending.is_none(), "session is single-threaded");
        assert!(self.current.is_none(), "already in transaction mode");
        self.options = options;
        self.registered_volumes.clear();
        self.ensured_nodes.clear();
        self.snapshot_fences.clear();
        self.pending = Some(Pending {
            cookie,
            op: None,
            volume: None,
            stage: Stage::TmpVerb,
            register: false,
        });
        let node = ctx.node();
        let cpu = ctx.pid().cpu.0;
        self.call_tmp(
            ctx,
            node,
            TmpMsg::Begin {
                cpu,
                class: options.class,
            },
        );
    }

    /// END-TRANSACTION (routed to the transaction's home TMP).
    pub fn end(&mut self, ctx: &mut Ctx<'_>, cookie: u64) {
        assert!(self.pending.is_none(), "session is single-threaded");
        let transid = self.current.expect("not in transaction mode");
        self.pending = Some(Pending {
            cookie,
            op: None,
            volume: None,
            stage: Stage::TmpVerb,
            register: false,
        });
        self.call_tmp(ctx, transid.home_node, TmpMsg::End { transid });
    }

    /// ABORT-TRANSACTION / RESTART-TRANSACTION (restart policy lives in
    /// the caller — typically the TCP's restart limit).
    pub fn abort(&mut self, ctx: &mut Ctx<'_>, reason: crate::state::AbortReason, cookie: u64) {
        assert!(self.pending.is_none(), "session is single-threaded");
        let transid = self.current.expect("not in transaction mode");
        self.pending = Some(Pending {
            cookie,
            op: None,
            volume: None,
            stage: Stage::TmpVerb,
            register: false,
        });
        self.call_tmp(ctx, transid.home_node, TmpMsg::Abort { transid, reason });
    }

    /// Must [`Self::ensure_remote`] run before transmitting the current
    /// transid to `dest` (a SEND to a remote server class)?
    pub fn needs_remote(&self, my_node: NodeId, dest: NodeId) -> bool {
        self.current.is_some() && dest != my_node && !self.ensured_nodes.contains(&dest)
    }

    /// Perform remote transaction begin for `dest` before a SEND: "this
    /// 'remote transaction begin' occurs prior to any transmission of the
    /// transid by the File System to a server or DISCPROCESS on the
    /// destination node." Completes with `OpDone(DiscReply::Ok)`.
    pub fn ensure_remote(&mut self, ctx: &mut Ctx<'_>, dest: NodeId, cookie: u64) {
        assert!(self.pending.is_none(), "session is single-threaded");
        let transid = self.current.expect("ensure_remote requires transaction mode");
        self.pending = Some(Pending {
            cookie,
            op: None,
            volume: None,
            stage: Stage::EnsureOnly,
            register: true,
        });
        let my_node = ctx.node();
        self.call_tmp(ctx, my_node, TmpMsg::EnsureRemoteSend { transid, dest });
        // remember optimistically; a Failed reply clears transaction state
        self.ensured_nodes.insert(dest);
    }

    // ------------------------------------------------------------------
    // Data-base operations
    // ------------------------------------------------------------------

    /// Issue a typed data-base operation. The session maps the operation
    /// to the wire request according to the transaction's declared mode:
    ///
    /// * read-write: `Read` is the plain unlocked read, `ReadLock` takes
    ///   an exclusive record lock (the historical behavior);
    /// * read-only + `locked_reads`: both reads take *shared* record
    ///   locks, released at END-TRANSACTION;
    /// * read-only (snapshot, the default): both reads become
    ///   [`DiscRequest::SnapshotRead`] against the volume's pinned fence —
    ///   no record locks, no transid on the wire, no registration;
    /// * writes under a read-only transaction are refused synchronously:
    ///   the returned event is `Failed { error: ReadOnlyViolation }` and
    ///   nothing was sent.
    ///
    /// Returns `None` when the operation was submitted; completion then
    /// arrives as [`SessionEvent::OpDone`] (or [`SessionEvent::Failed`]).
    #[must_use = "a read-only violation completes synchronously and must be handled"]
    pub fn op(&mut self, ctx: &mut Ctx<'_>, op: DbOp, cookie: u64) -> Option<SessionEvent> {
        let in_txn = self.current.is_some();
        let read_only = in_txn && self.options.class == TxnClass::ReadOnly;
        if read_only
            && matches!(
                op,
                DbOp::Insert { .. }
                    | DbOp::Update { .. }
                    | DbOp::Delete { .. }
                    | DbOp::InsertEntry { .. }
            )
        {
            ctx.count("tmf.readonly_violations", 1);
            return Some(SessionEvent::Failed {
                error: SessionError::ReadOnlyViolation,
                cookie,
            });
        }
        let snapshot = in_txn && self.options.snapshot_reads();
        let req = match op {
            DbOp::Read { file, key } | DbOp::ReadLock { file, key } if snapshot => {
                let fence = self
                    .catalog
                    .volume_for(&file, &key)
                    .and_then(|v| self.snapshot_fences.get(&v).copied());
                DiscRequest::SnapshotRead { file, key, fence }
            }
            DbOp::Read { file, key } if read_only => {
                // locked read-only mode: every read blocks writers
                let transid = self.current.expect("in transaction mode");
                DiscRequest::ReadLock {
                    file,
                    key,
                    transid,
                    lock_wait: self.lock_wait,
                    mode: LockMode::Shared,
                }
            }
            DbOp::Read { file, key } => DiscRequest::Read { file, key },
            DbOp::ReadLock { file, key } => {
                let transid = self.current.expect("ReadLock requires transaction mode");
                let mode = match self.options.class {
                    TxnClass::ReadWrite => LockMode::Exclusive,
                    TxnClass::ReadOnly => LockMode::Shared,
                };
                DiscRequest::ReadLock {
                    file,
                    key,
                    transid,
                    lock_wait: self.lock_wait,
                    mode,
                }
            }
            DbOp::Insert { file, key, value } => DiscRequest::Insert {
                file,
                key,
                value,
                transid: self.current,
                lock_wait: self.lock_wait,
            },
            DbOp::Update { file, key, value } => DiscRequest::Update {
                file,
                key,
                value,
                transid: self.current,
            },
            DbOp::Delete { file, key } => DiscRequest::Delete {
                file,
                key,
                transid: self.current,
            },
            DbOp::InsertEntry { file, value } => DiscRequest::InsertEntry {
                file,
                value,
                transid: self.current,
            },
            DbOp::ReadRange {
                file,
                low,
                high,
                limit,
            } => DiscRequest::ReadRange {
                file,
                low,
                high,
                limit,
            },
        };
        self.submit(ctx, req, cookie);
        None
    }

    /// Route an already-built request (advanced callers). Panics on files
    /// not in the catalog — that is a configuration bug, not a runtime
    /// condition.
    pub fn submit(&mut self, ctx: &mut Ctx<'_>, op: DiscRequest, cookie: u64) {
        assert!(self.pending.is_none(), "session is single-threaded");
        let volume = self
            .volume_of(&op)
            .unwrap_or_else(|| panic!("file of {op:?} not in the catalog"));
        // snapshot reads carry no transid, so the TMP is never told about
        // the node or the volume; everything else keeps the historical
        // remote-begin + registration stages
        let register = !matches!(op, DiscRequest::SnapshotRead { .. });
        self.pending = Some(Pending {
            cookie,
            op: Some(op),
            volume: Some(volume),
            stage: Stage::EnsureRemote,
            register,
        });
        self.advance(ctx);
    }

    fn volume_of(&self, op: &DiscRequest) -> Option<VolumeRef> {
        let (file, key) = match op {
            DiscRequest::Read { file, key }
            | DiscRequest::SnapshotRead { file, key, .. }
            | DiscRequest::ReadLock { file, key, .. }
            | DiscRequest::Insert { file, key, .. }
            | DiscRequest::Update { file, key, .. }
            | DiscRequest::Delete { file, key, .. } => (file.as_str(), key.as_ref()),
            // scans address the partition holding `low`; cross-partition
            // scans are the application's concern
            DiscRequest::ReadRange { file, low, .. } => (file.as_str(), low.as_ref()),
            DiscRequest::InsertEntry { file, .. } | DiscRequest::LockFile { file, .. } => {
                (file.as_str(), &[][..])
            }
            // protocol / recovery / dump ops carry no data address
            DiscRequest::EndPhase1 { .. }
            | DiscRequest::FlushTxn { .. }
            | DiscRequest::ReleaseLocks { .. }
            | DiscRequest::Undo { .. }
            | DiscRequest::Archive { .. }
            | DiscRequest::DumpBegin { .. }
            | DiscRequest::DumpScan { .. }
            | DiscRequest::DumpEnd { .. }
            | DiscRequest::LockAudit
            | DiscRequest::StateAudit => return None,
        };
        self.catalog.volume_for(file, key)
    }

    /// Drive the pending op through its stages: remote-begin →
    /// registration → execution. Each network step returns and resumes
    /// when its ack arrives.
    fn advance(&mut self, ctx: &mut Ctx<'_>) {
        loop {
            let Some(p) = &mut self.pending else { return };
            let Some(volume) = p.volume.clone() else {
                return;
            };
            let transactional = self.current.is_some() && p.register;
            match p.stage {
                Stage::EnsureRemote => {
                    let my_node = ctx.node();
                    if !transactional
                        || volume.node == my_node
                        || self.ensured_nodes.contains(&volume.node)
                    {
                        p.stage = Stage::Register;
                        continue;
                    }
                    let transid = self.current.expect("transactional");
                    p.stage = Stage::Register; // resumed by the ack
                    let dest = volume.node;
                    self.call_tmp(ctx, my_node, TmpMsg::EnsureRemoteSend { transid, dest });
                    return;
                }
                Stage::Register => {
                    if !transactional || self.registered_volumes.contains(&volume) {
                        p.stage = Stage::Execute;
                        continue;
                    }
                    let transid = self.current.expect("transactional");
                    p.stage = Stage::Execute; // resumed by the ack
                    self.call_tmp(
                        ctx,
                        volume.node,
                        TmpMsg::RegisterVolume {
                            transid,
                            volume: volume.clone(),
                        },
                    );
                    return;
                }
                Stage::Execute => {
                    let op = p.op.clone().expect("data op present");
                    let cookie = p.cookie;
                    let target = Target::Named(volume.node, volume.volume.clone());
                    if self
                        .disc_rpc
                        .call(ctx, target, op, self.attempt_timeout, self.retries, cookie)
                        .is_err()
                    {
                        // the DISCPROCESS name is unresolvable right now
                        // (takeover window): retry persistently
                        let op = self.pending.as_ref().and_then(|p| p.op.clone());
                        if let Some(op) = op {
                            self.disc_rpc.call_persistent(
                                ctx,
                                Target::Named(volume.node, volume.volume.clone()),
                                op,
                                self.attempt_timeout,
                                cookie,
                            );
                        }
                    }
                    return;
                }
                Stage::TmpVerb | Stage::EnsureOnly => return,
            }
        }
    }

    // ------------------------------------------------------------------
    // Completion plumbing
    // ------------------------------------------------------------------

    fn call_tmp(&mut self, ctx: &mut Ctx<'_>, node: NodeId, msg: TmpMsg) {
        // the TMP name survives takeovers, and persistent retry rides out
        // the takeover window; critical-response semantics for sessions
        // come from the TMP's own replies (Failed / Phase1Refused)
        let _ = self.tmp_rpc.call_persistent(
            ctx,
            Target::Named(node, "$TMP".into()),
            msg,
            self.attempt_timeout,
            0,
        );
    }

    /// Offer an incoming payload; `Ok(Some(event))` when the pending
    /// operation completed, `Ok(None)` if consumed but still in progress,
    /// `Err(payload)` if not ours.
    pub fn accept(
        &mut self,
        ctx: &mut Ctx<'_>,
        payload: Payload,
    ) -> Result<Option<SessionEvent>, Payload> {
        let payload = match self.tmp_rpc.accept(ctx, payload) {
            Ok(c) => return Ok(self.on_tmp_reply(ctx, c.body)),
            Err(p) => p,
        };
        match self.disc_rpc.accept(ctx, payload) {
            Ok(c) => match self.pending.take() {
                Some(p) => {
                    // A snapshot reply pins the volume's fence for the rest
                    // of the transaction and is normalized to the plain
                    // Value shape, so server logic stays mode-agnostic.
                    let reply = match c.body {
                        DiscReply::Snapshot { value, fence } => {
                            if let Some(v) = p.volume.clone() {
                                self.snapshot_fences.entry(v).or_insert(fence);
                            }
                            DiscReply::Value(value)
                        }
                        other => other,
                    };
                    Ok(Some(SessionEvent::OpDone {
                        reply,
                        cookie: p.cookie,
                    }))
                }
                None => Ok(None), // stale completion
            },
            Err(p) => Err(p),
        }
    }

    fn on_tmp_reply(&mut self, ctx: &mut Ctx<'_>, body: TmpReply) -> Option<SessionEvent> {
        let cookie = self.pending.as_ref().map(|p| p.cookie)?;
        match body {
            TmpReply::Began { transid } => {
                self.current = Some(transid);
                self.pending = None;
                ctx.flight(transid.flight_id(), FlightCause::SessionBegan);
                Some(SessionEvent::Began { transid, cookie })
            }
            TmpReply::Committed => {
                if let Some(t) = self.current {
                    ctx.flight(t.flight_id(), FlightCause::SessionCommitted);
                }
                self.current = None;
                self.options = SessionOptions::default();
                self.pending = None;
                self.registered_volumes.clear();
                self.ensured_nodes.clear();
                self.snapshot_fences.clear();
                Some(SessionEvent::Committed { cookie })
            }
            TmpReply::Aborted => {
                if let Some(t) = self.current {
                    ctx.flight(t.flight_id(), FlightCause::SessionAborted);
                }
                self.current = None;
                self.options = SessionOptions::default();
                self.pending = None;
                self.registered_volumes.clear();
                self.ensured_nodes.clear();
                self.snapshot_fences.clear();
                Some(SessionEvent::Aborted { cookie })
            }
            TmpReply::Ok => {
                // a registration step completed: record it and continue.
                // stage was advanced when the request was sent, so the
                // *current* stage names the step after the acked one.
                let (stage, volume) = match &self.pending {
                    Some(p) => (p.stage, p.volume.clone()),
                    None => return None,
                };
                if stage == Stage::EnsureOnly {
                    self.pending = None;
                    return Some(SessionEvent::OpDone {
                        reply: DiscReply::Ok,
                        cookie,
                    });
                }
                match (stage, volume) {
                    (Stage::Register, Some(v)) => {
                        self.ensured_nodes.insert(v.node);
                    }
                    (Stage::Execute, Some(v)) => {
                        self.registered_volumes.insert(v);
                    }
                    _ => {}
                }
                self.advance(ctx);
                None
            }
            TmpReply::Failed | TmpReply::Phase1Refused => {
                self.pending = None;
                ctx.count("tmf.session_failures", 1);
                Some(SessionEvent::Failed {
                    error: SessionError::Refused,
                    cookie,
                })
            }
            TmpReply::Phase1Ok
            | TmpReply::Disposition { .. }
            | TmpReply::Open { .. }
            | TmpReply::State(_) => {
                // these replies answer TMP-internal or utility requests,
                // never a session verb
                self.pending = None;
                ctx.count("tmf.session_failures", 1);
                Some(SessionEvent::Failed {
                    error: SessionError::Protocol,
                    cookie,
                })
            }
        }
    }

    /// Drive timers; returns an event if a request finally expired.
    pub fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) -> Option<SessionEvent> {
        let expired = matches!(
            self.tmp_rpc.on_timer(ctx, tag),
            TimerOutcome::Expired { .. }
        ) || matches!(
            self.disc_rpc.on_timer(ctx, tag),
            TimerOutcome::Expired { .. }
        );
        if expired {
            if let Some(p) = self.pending.take() {
                ctx.count("tmf.session_failures", 1);
                return Some(SessionEvent::Failed {
                    error: SessionError::Timeout,
                    cookie: p.cookie,
                });
            }
        }
        None
    }
}
