//! # tmf — the Transaction Monitoring Facility
//!
//! The paper's primary contribution: continuous, fault-tolerant
//! transaction processing in a decentralized, distributed environment.
//!
//! * [`state`] — the transaction state machine of Figure 3
//!   (Active → Ending → Ended, Active → Aborting → Aborted), with the
//!   transition table enforced at runtime.
//! * [`table`] — the per-processor transaction tables; within a node,
//!   every state change is broadcast to *all* processors over the
//!   interprocessor bus (the paper's single-node design decision), while
//!   across the network only participating nodes are notified.
//! * [`tmp`] — the Transaction Monitor Process: one pair per node. It
//!   generates transids, tracks which volumes and which remote nodes
//!   participate in each transaction, performs *remote transaction begin*,
//!   and runs the commit protocols: the **abbreviated two-phase commit**
//!   for single-node transactions and the **distributed two-phase commit**
//!   with *critical-response* phase-one messages and *safe-delivery*
//!   phase-two/abort messages. Any participating node can unilaterally
//!   abort until it has acknowledged phase one; after that it holds the
//!   transaction's locks until the final disposition arrives (with a
//!   manual override for operators, as the paper describes).
//! * [`session`] — the application-side File System extension: it carries
//!   the *current process transid* on every data-base request, registers
//!   volume participation with the local TMP, and triggers remote
//!   transaction begin before the first transmission of a transid to
//!   another node.
//! * [`facility`] — wiring: spawn a complete TMF node (TMP, AUDITPROCESS,
//!   BACKOUTPROCESS, DISCPROCESSes, per-CPU transaction tables) in one
//!   call.
//!
//! The [`Transid`] type is defined in `encompass-storage` (the DISCPROCESS
//! tags locks and images with it) and re-exported here, where it
//! conceptually belongs.

pub mod facility;
pub mod session;
pub mod state;
pub mod table;
pub mod tmp;

pub use encompass_storage::types::Transid;
pub use facility::{
    flight_reports, spawn_tmf_network, spawn_tmf_node, ConfigError, FlightReport, NodeHandles,
    TmfNodeConfig, TmfNodeConfigBuilder,
};
pub use session::{DbOp, SessionError, SessionEvent, SessionOptions, TmfSession};
pub use state::{AbortReason, TxState, TxnClass};
pub use table::TxTableProcess;
pub use tmp::{spawn_tmp, TmpConfig, TmpMsg, TmpProcess, TmpReply};
