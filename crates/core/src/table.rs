//! Per-processor transaction tables.
//!
//! "All transaction state changes are broadcast, via the interprocessor
//! bus, to all processors within a single node … regardless of which
//! processors actually participated in the transaction" — a design choice
//! the paper justifies by the bus's speed and reliability (and whose cost
//! experiment T1b measures). One `TxTableProcess` runs on every CPU; the
//! TMP broadcasts state changes to all of them; local software (File
//! System shims, servers) can query its own CPU's table cheaply.

use crate::state::TxState;
use encompass_storage::types::Transid;
use encompass_sim::{Ctx, Payload, Pid, Process};
use std::collections::HashMap;

/// A broadcast state change (TMP → every CPU's table).
#[derive(Clone, Copy, Debug)]
pub struct StateBroadcast {
    pub transid: Transid,
    pub state: TxState,
}

/// Query a table for a transaction's state; the reply is
/// `TableAnswer`.
#[derive(Clone, Copy, Debug)]
pub struct TableQuery {
    pub transid: Transid,
}

/// Reply to a [`TableQuery`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TableAnswer {
    pub transid: Transid,
    pub state: Option<TxState>,
}

/// The per-CPU transaction table. Registered as `$TXTABLE` on its node
/// (one per CPU; lookups resolve per-CPU via pid, queries in tests use the
/// pid directly).
#[derive(Default)]
pub struct TxTableProcess {
    states: HashMap<Transid, TxState>,
}

impl TxTableProcess {
    pub fn new() -> TxTableProcess {
        TxTableProcess::default()
    }
}

impl Process for TxTableProcess {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // one table per CPU: name carries the CPU number
        let name = format!("$TXTABLE{}", ctx.pid().cpu.0);
        ctx.register_name(&name);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, src: Pid, payload: Payload) {
        if let Some(b) = payload.downcast_ref::<StateBroadcast>() {
            ctx.count("tmf.table_broadcasts", 1);
            // terminal states remove the transid: "the transid leaves the
            // system"
            if b.state.is_terminal() {
                self.states.remove(&b.transid);
            } else {
                // enforce Figure 3 locally: ignore illegal regressions
                // (possible only from reordered broadcasts)
                match self.states.get(&b.transid) {
                    Some(cur) if !cur.can_become(b.state) && *cur != b.state => return,
                    _ => {}
                }
                self.states.insert(b.transid, b.state);
            }
            return;
        }
        if let Some(q) = payload.downcast_ref::<TableQuery>() {
            let answer = TableAnswer {
                transid: q.transid,
                state: self.states.get(&q.transid).copied(),
            };
            let _ = ctx.send(src, Payload::new(answer));
        }
    }

    fn kind(&self) -> &'static str {
        "txtable"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use encompass_sim::{NodeId, SimConfig, SimDuration, World};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn t(seq: u64) -> Transid {
        Transid {
            home_node: NodeId(0),
            cpu: 0,
            seq,
        }
    }

    struct Asker {
        table: Pid,
        transid: Transid,
        got: Rc<RefCell<Option<TableAnswer>>>,
    }
    impl Process for Asker {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let _ = ctx.send(
                self.table,
                Payload::new(TableQuery {
                    transid: self.transid,
                }),
            );
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, _src: Pid, payload: Payload) {
            *self.got.borrow_mut() = Some(payload.expect::<TableAnswer>());
        }
    }

    fn query(w: &mut World, n: NodeId, table: Pid, transid: Transid) -> Option<TxState> {
        let got = Rc::new(RefCell::new(None));
        w.spawn(
            n,
            1,
            Box::new(Asker {
                table,
                transid,
                got: got.clone(),
            }),
        );
        w.run_for(SimDuration::from_millis(10));
        let answer = got.borrow().expect("query answered");
        answer.state
    }

    #[test]
    fn broadcast_query_and_terminal_purge() {
        let mut w = World::new(SimConfig::default());
        let n = w.add_node(2);
        let table = w.spawn(n, 0, Box::new(TxTableProcess::new()));
        w.run_until_quiescent();

        w.send_external(
            table,
            Payload::new(StateBroadcast {
                transid: t(1),
                state: TxState::Active,
            }),
        );
        w.run_for(SimDuration::from_millis(5));
        assert_eq!(query(&mut w, n, table, t(1)), Some(TxState::Active));
        assert_eq!(query(&mut w, n, table, t(2)), None);

        w.send_external(
            table,
            Payload::new(StateBroadcast {
                transid: t(1),
                state: TxState::Ending,
            }),
        );
        w.run_for(SimDuration::from_millis(5));
        assert_eq!(query(&mut w, n, table, t(1)), Some(TxState::Ending));

        // terminal: the transid leaves the system
        w.send_external(
            table,
            Payload::new(StateBroadcast {
                transid: t(1),
                state: TxState::Ended,
            }),
        );
        w.run_for(SimDuration::from_millis(5));
        assert_eq!(query(&mut w, n, table, t(1)), None);
        assert!(w.metrics().get("tmf.table_broadcasts") >= 3);
    }

    #[test]
    fn illegal_regressions_are_ignored() {
        let mut w = World::new(SimConfig::default());
        let n = w.add_node(2);
        let table = w.spawn(n, 0, Box::new(TxTableProcess::new()));
        w.run_until_quiescent();
        for state in [TxState::Active, TxState::Aborting, TxState::Active] {
            w.send_external(
                table,
                Payload::new(StateBroadcast {
                    transid: t(7),
                    state,
                }),
            );
        }
        w.run_for(SimDuration::from_millis(5));
        // the stale Active re-broadcast did not overwrite Aborting
        assert_eq!(query(&mut w, n, table, t(7)), Some(TxState::Aborting));
    }
}
