//! The Transaction Monitor Process (TMP): one process-pair per network
//! node, coordinating distributed transactions.
//!
//! Responsibilities, following the paper:
//!
//! * generate transids at `BEGIN-TRANSACTION` and broadcast "active" state
//!   to every processor of the node;
//! * track, per transaction, the **local participating volumes** (reported
//!   by the File System session layer) and the **remote nodes this node
//!   directly transmitted the transid to** (its *children*);
//! * perform **remote transaction begin**: before the first transmission
//!   of a transid to another node, notify that node's TMP so it broadcasts
//!   "active" state on its processors — a *critical response* message;
//! * run the **abbreviated two-phase commit** (single node: force audit,
//!   write the commit record, release locks) and the **distributed
//!   two-phase commit**: phase one is critical-response down the
//!   transmission tree (each node forces its local audit and asks its own
//!   children transitively); phase two and abort/backout notifications are
//!   *safe-delivery* — retried until deliverable, never blocking commit
//!   completion on the home node;
//! * honor **unilateral abort**: a non-home node may abort until it has
//!   acknowledged phase one; afterwards it holds locks until the final
//!   disposition arrives (or an operator forces one — the manual
//!   override);
//! * write the **Monitor Audit Trail**: the forced commit record *is* the
//!   commit point;
//! * drive the BACKOUTPROCESS for aborting transactions and release locks
//!   on the participating DISCPROCESSes afterwards;
//! * abort the active transactions of a failed processor (the paper's
//!   automatic abort on "failure of the primary TCP's processor").

use crate::state::{AbortReason, TxState, TxnClass};
use crate::table::StateBroadcast;
use encompass_audit::backout::{BackoutMsg, BackoutReply};
use encompass_audit::monitor::MonitorTrail;
use encompass_sim::{
    FlightCause, HistogramHandle, NodeId, Payload, Pid, SimDuration, SimTime, SystemEvent, World,
};
use encompass_storage::audit_api::{AuditMsg, AuditReply};
use encompass_storage::discprocess::{DiscReply, DiscRequest};
use encompass_storage::media::{dump_registry_key, DumpRegistry};
use encompass_storage::types::{Transid, VolumeRef};
use guardian::{reply, PairApp, PairCtx, PairHandle, ReplyCache, Request, Rpc, Target};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

const TAG_MONITOR_BASE: u64 = 1 << 16;
/// Periodic in-doubt sweep on non-home nodes (below TAG_MONITOR_BASE).
const TAG_JANITOR: u64 = 7;
/// Group-commit window expiry for the monitor-trail boxcar.
const TAG_MONITOR_WINDOW: u64 = 8;
/// Physical completion of a boxcarred monitor-trail force.
const TAG_MONITOR_FLUSH: u64 = 9;
/// Periodic audit-trail capacity sweep (purge below each volume's latest
/// completed dump floor).
const TAG_PURGE: u64 = 10;

/// Cumulative bucket bounds for the boxcar-size histogram.
const BOXCAR_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32];
/// Cumulative bucket bounds (µs) for home-commit latency.
const LATENCY_BOUNDS: &[u64] = &[1_000, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000];

/// Requests handled by a TMP (from sessions, operators, and other TMPs).
#[derive(Clone, Debug)]
pub enum TmpMsg {
    // ---- session-facing ----
    /// BEGIN-TRANSACTION from a process on CPU `cpu` of this node. The
    /// declared class decides the END protocol: a read-only transaction
    /// resolves locally, without phase one or a forced commit record.
    Begin { cpu: u8, class: TxnClass },
    /// The File System reports that `transid` touches `volume` (local).
    RegisterVolume { transid: Transid, volume: VolumeRef },
    /// The File System is about to transmit `transid` to `dest` for the
    /// first time from this node: ensure remote transaction begin.
    EnsureRemoteSend { transid: Transid, dest: NodeId },
    /// END-TRANSACTION (home node only).
    End { transid: Transid },
    /// ABORT-TRANSACTION / RESTART-TRANSACTION backout request.
    Abort { transid: Transid, reason: AbortReason },
    /// TMF utility: what happened to this transaction?
    QueryDisposition { transid: Transid },
    /// TMF utility: operator override for an in-doubt transaction on a
    /// node cut off after acknowledging phase one.
    ForceDisposition { transid: Transid, commit: bool },
    /// TMF utility: list the transids still present in this TMP's
    /// transaction table (post-quiesce verification tooling).
    ListOpen,
    /// TMF utility: report the sizes of the TMP's per-transaction maps
    /// (bounded-state oracle of the chaos soak tier).
    StateAudit,
    // ---- TMP ↔ TMP (network) ----
    /// Remote transaction begin (critical response).
    RemoteBegin { transid: Transid },
    /// Phase one of distributed commit (critical response).
    Phase1 { transid: Transid },
    /// Phase two: release locks (safe delivery).
    Phase2 { transid: Transid },
    /// Abort/backout notification (safe delivery).
    AbortTxn { transid: Transid },
}

/// Replies from a TMP.
#[derive(Clone, Debug, PartialEq)]
pub enum TmpReply {
    Began { transid: Transid },
    Ok,
    /// Registration / remote begin could not be performed (e.g. the remote
    /// node is unreachable); the requester should abort.
    Failed,
    Phase1Ok,
    Phase1Refused,
    Committed,
    Aborted,
    Disposition { state: Option<TxState> },
    Open { transids: Vec<Transid> },
    /// Reply to [`TmpMsg::StateAudit`].
    State(TmpStateReport),
}

/// Sizes of a TMP's per-transaction state, reported by
/// [`TmpMsg::StateAudit`]. Everything here is either bounded by the
/// transactions currently in flight or by a fixed capacity; the chaos
/// soak tier's bounded-state oracle checks that at epoch boundaries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TmpStateReport {
    /// Entries in the transaction table.
    pub txns: usize,
    /// Table entries in a terminal state still awaiting safe-delivery
    /// acknowledgements.
    pub terminal_txns: usize,
    /// Completion records waiting to board the next monitor force.
    pub monitor_boxcar: usize,
    /// Records in the monitor force currently in flight.
    pub monitor_inflight: usize,
    /// Outstanding safe-delivery rpcs (Phase2 / AbortTxn / ReleaseLocks).
    pub deliveries: usize,
    /// Outstanding early (COMMITTING-state) lock-release rpcs.
    pub early_releases: usize,
    /// Outstanding backout rpcs.
    pub backouts: usize,
    /// Outstanding phase-one rpcs to local volumes.
    pub phase1_disc: usize,
    /// Outstanding phase-one rpcs to child nodes.
    pub phase1_tmp: usize,
    /// Outstanding remote-begin rpcs.
    pub remote_begins: usize,
    /// Outstanding in-doubt disposition queries.
    pub janitor_rpcs: usize,
    /// Outstanding capacity-sweep purge rpcs.
    pub purge_rpcs: usize,
    /// Reply-cache occupancy (bounded by its capacity).
    pub reply_cache: usize,
}

/// Configuration for one node's TMP.
#[derive(Clone, Debug)]
pub struct TmpConfig {
    /// Audit service for each local volume name (for backout requests).
    pub audit_service_of: BTreeMap<String, String>,
    /// The local BACKOUTPROCESS service name.
    pub backout_service: String,
    /// Per-attempt timeout of critical-response messages.
    pub critical_timeout: SimDuration,
    /// Retry budget of critical-response messages.
    pub critical_retries: u32,
    /// Retry interval of safe-delivery messages.
    pub safe_retry: SimDuration,
    /// Interval of the non-home in-doubt sweep: entries that sit in the
    /// table without progress are resolved against the home node's TMP
    /// (ROLLFORWARD's "negotiation with other nodes", done online).
    pub indoubt_probe: SimDuration,
    /// How long a decided completion record may wait for other concurrently
    /// completing transactions to board the same monitor-trail force. Zero
    /// keeps the one-force-per-record behavior (and its exact trace).
    pub group_commit_window: SimDuration,
    /// Start the boxcarred force early once this many records are waiting.
    pub group_commit_max: usize,
    /// Interval of the audit-trail capacity sweep: for every local audit
    /// service whose volumes all have a completed online dump registered,
    /// ask it to purge trail files below the smallest dump purge floor
    /// (clamped by the oldest open transaction). Zero disables the sweep
    /// (the default, preserving historical traces).
    pub purge_interval: SimDuration,
}

impl Default for TmpConfig {
    fn default() -> Self {
        TmpConfig {
            audit_service_of: BTreeMap::new(),
            backout_service: "$BACKOUT".into(),
            critical_timeout: SimDuration::from_millis(100),
            critical_retries: 3,
            safe_retry: SimDuration::from_millis(100),
            indoubt_probe: SimDuration::from_millis(250),
            group_commit_window: SimDuration::ZERO,
            group_commit_max: 64,
            purge_interval: SimDuration::ZERO,
        }
    }
}

struct Txn {
    state: TxState,
    home: bool,
    /// The class declared at BEGIN-TRANSACTION. Replicated to the backup:
    /// a takeover must know that an Active home entry is read-only (plain
    /// abort — there is nothing durable to salvage) and that a committed
    /// read-only parent's children get AbortTxn, not Phase2.
    class: TxnClass,
    volumes: Vec<VolumeRef>,
    children: BTreeSet<NodeId>,
    /// Outstanding phase-one acknowledgements (local volumes + children).
    outstanding_phase1: usize,
    /// The requester awaiting End (home) or Phase1 (non-home).
    end_waiter: Option<(u64, Pid)>,
    abort_waiters: Vec<(u64, Pid)>,
    abort_reason: Option<AbortReason>,
    /// Outstanding phase-two / abort-propagation acknowledgements. The
    /// entry stays in the table (terminal state) until every safe-delivery
    /// message is acknowledged, so a takeover can re-drive them.
    pending_deliveries: usize,
    /// Set by one janitor sweep, cleared by any state change: an entry
    /// seen armed on the *next* sweep has made no progress and its
    /// disposition is queried from the home node.
    janitor_armed: bool,
    /// When this home transaction entered Ending (commit-latency metric).
    /// Primary-memory only: after a takeover the latency is unknowable and
    /// simply not observed.
    ending_at: Option<encompass_sim::SimTime>,
}

impl Txn {
    fn new(home: bool, class: TxnClass) -> Txn {
        Txn {
            state: TxState::Active,
            home,
            class,
            volumes: Vec::new(),
            children: BTreeSet::new(),
            outstanding_phase1: 0,
            end_waiter: None,
            abort_waiters: Vec::new(),
            abort_reason: None,
            pending_deliveries: 0,
            janitor_armed: false,
            ending_at: None,
        }
    }
}

/// Checkpoint delta: the replicated fraction of a transaction entry.
struct TmpDelta {
    transid: Transid,
    state: TxState,
    home: bool,
    class: TxnClass,
    volumes: Vec<VolumeRef>,
    children: Vec<NodeId>,
    seq: u64,
    drop: bool,
}

/// One transaction's replicated fields: (transid, state, home, class,
/// volumes, children).
type TxnSnapshot = (Transid, TxState, bool, TxnClass, Vec<VolumeRef>, Vec<NodeId>);

struct TmpSnapshot {
    seq: u64,
    txns: Vec<TxnSnapshot>,
    replies: Vec<(u64, TmpReply)>,
}

/// The TMP application (hosted in a `guardian` process-pair, named `$TMP`).
pub struct TmpProcess {
    cfg: TmpConfig,
    seq: u64,
    // BTreeMap, not HashMap: takeover/janitor/purge sweeps iterate this
    // table, and iteration order must be deterministic (lint: L1-iter).
    txns: BTreeMap<Transid, Txn>,
    replies: ReplyCache<TmpReply>,
    disc_rpc: Rpc<DiscRequest, DiscReply>,
    tmp_rpc: Rpc<TmpMsg, TmpReply>,
    backout_rpc: Rpc<BackoutMsg, BackoutReply>,
    audit_rpc: Rpc<AuditMsg, AuditReply>,
    /// critical EndPhase1 rpc → transid
    phase1_disc: HashMap<u64, Transid>,
    /// critical Phase1 rpc → (transid, child)
    phase1_tmp: HashMap<u64, (Transid, NodeId)>,
    /// critical RemoteBegin rpc → (transid, dest, requester)
    remote_begins: HashMap<u64, (Transid, NodeId, u64, Pid)>,
    backouts: HashMap<u64, Transid>,
    monitor_timers: HashMap<u64, (Transid, bool)>,
    /// Completion records waiting to board the next monitor-trail force
    /// (group-commit path; unused when the window is zero).
    monitor_boxcar: Vec<(Transid, bool)>,
    /// The boxcar whose physical force is in flight.
    monitor_inflight: Option<Vec<(Transid, bool)>>,
    /// Deadline of the `TAG_MONITOR_WINDOW` timer armed for the
    /// accumulating boxcar. A firing before this deadline is a *stale*
    /// timer left over from an earlier, max-filled boxcar and must be
    /// ignored, or it closes the new boxcar before its own window elapses.
    monitor_window_deadline: Option<SimTime>,
    /// safe-delivery Phase2/AbortTxn/ReleaseLocks rpc → transid
    deliveries: HashMap<u64, Transid>,
    /// Early (COMMITTING-state) lock-release rpc → transid. Purely
    /// informational: the terminal delivery set re-sends ReleaseLocks
    /// anyway, and receivers are idempotent.
    early_releases: HashMap<u64, Transid>,
    /// in-doubt QueryDisposition rpc → transid
    janitor_rpcs: BTreeMap<u64, Transid>,
    /// outstanding capacity-sweep Purge rpcs
    purge_rpcs: HashSet<u64>,
    next_tag: u64,
    /// Interned histogram keys: the commit path must not format counter
    /// names per observation.
    boxcar_hist: HistogramHandle,
    latency_hist: HistogramHandle,
}

impl TmpProcess {
    pub fn new(cfg: TmpConfig) -> TmpProcess {
        TmpProcess {
            cfg,
            seq: 0,
            txns: BTreeMap::new(),
            replies: ReplyCache::new(16384),
            disc_rpc: Rpc::new(10),
            tmp_rpc: Rpc::new(11),
            backout_rpc: Rpc::new(12),
            audit_rpc: Rpc::new(13),
            phase1_disc: HashMap::new(),
            phase1_tmp: HashMap::new(),
            remote_begins: HashMap::new(),
            backouts: HashMap::new(),
            monitor_timers: HashMap::new(),
            monitor_boxcar: Vec::new(),
            monitor_inflight: None,
            monitor_window_deadline: None,
            deliveries: HashMap::new(),
            early_releases: HashMap::new(),
            janitor_rpcs: BTreeMap::new(),
            purge_rpcs: HashSet::new(),
            next_tag: 0,
            boxcar_hist: HistogramHandle::new("tmf.monitor_boxcar_size", BOXCAR_BOUNDS),
            latency_hist: HistogramHandle::new("tmf.commit_latency_us", LATENCY_BOUNDS),
        }
    }

    fn audit_service(&self, volume: &VolumeRef) -> String {
        self.cfg
            .audit_service_of
            .get(&volume.volume)
            .cloned()
            .unwrap_or_else(|| "$AUDIT".to_string())
    }

    // ------------------------------------------------------------------
    // Broadcast + checkpoint
    // ------------------------------------------------------------------

    /// Broadcast a state change to the transaction table of *every*
    /// processor in this node (the paper's intra-node design).
    fn broadcast(&mut self, ctx: &mut PairCtx<'_, '_>, transid: Transid, state: TxState) {
        let node = ctx.node();
        let cpus = ctx.cpu_count(node);
        for cpu in 0..cpus {
            if let Some(pid) = ctx.lookup_name(node, &format!("$TXTABLE{cpu}")) {
                let _ = ctx.send(pid, Payload::new(StateBroadcast { transid, state }));
                ctx.count("tmf.state_broadcasts", 1);
            }
        }
    }

    fn checkpoint_txn(&mut self, ctx: &mut PairCtx<'_, '_>, transid: Transid, drop: bool) {
        let (state, home, class, volumes, children) = match self.txns.get(&transid) {
            Some(t) => (
                t.state,
                t.home,
                t.class,
                t.volumes.clone(),
                t.children.iter().copied().collect(),
            ),
            None => (
                TxState::Aborted,
                false,
                TxnClass::ReadWrite,
                Vec::new(),
                Vec::new(),
            ),
        };
        ctx.checkpoint(Payload::new(TmpDelta {
            transid,
            state,
            home,
            class,
            volumes,
            children,
            seq: self.seq,
            drop,
        }));
    }

    fn set_state(&mut self, ctx: &mut PairCtx<'_, '_>, transid: Transid, state: TxState) {
        if let Some(t) = self.txns.get_mut(&transid) {
            debug_assert!(
                t.state.can_become(state) || t.state == state,
                "illegal transition {} -> {} for {transid}",
                t.state,
                state
            );
            t.state = state;
            t.janitor_armed = false;
        }
        self.broadcast(ctx, transid, state);
        self.checkpoint_txn(ctx, transid, false);
    }

    fn answer(&mut self, ctx: &mut PairCtx<'_, '_>, req_id: u64, from: Pid, r: TmpReply) {
        self.replies.store(req_id, r.clone());
        reply(ctx, req_id, from, r);
    }

    // ------------------------------------------------------------------
    // Commit protocol
    // ------------------------------------------------------------------

    fn start_phase1(&mut self, ctx: &mut PairCtx<'_, '_>, transid: Transid) {
        let Some(t) = self.txns.get(&transid) else {
            return;
        };
        let volumes = t.volumes.clone();
        let children: Vec<NodeId> = t.children.iter().copied().collect();
        let outstanding = volumes.len() + children.len();
        if let Some(t) = self.txns.get_mut(&transid) {
            t.outstanding_phase1 = outstanding;
        }
        ctx.flight(
            transid.flight_id(),
            FlightCause::Phase1Start {
                participants: outstanding as u32,
            },
        );
        if outstanding == 0 {
            self.phase1_complete(ctx, transid);
            return;
        }
        for v in volumes {
            ctx.count("tmf.msgs.phase1_local", 1);
            match self.disc_rpc.call(
                ctx,
                Target::Named(v.node, v.volume.clone()),
                DiscRequest::EndPhase1 { transid },
                self.cfg.critical_timeout,
                self.cfg.critical_retries,
                0,
            ) {
                Ok(id) => {
                    self.phase1_disc.insert(id, transid);
                }
                Err(_) => {
                    self.phase1_failed(ctx, transid);
                    return;
                }
            }
        }
        for child in children {
            ctx.count("tmf.msgs.phase1_net", 1);
            match self.tmp_rpc.call(
                ctx,
                Target::Named(child, "$TMP".into()),
                TmpMsg::Phase1 { transid },
                self.cfg.critical_timeout,
                self.cfg.critical_retries,
                0,
            ) {
                Ok(id) => {
                    self.phase1_tmp.insert(id, (transid, child));
                }
                Err(_) => {
                    // "the destination TMP must be accessible at the time
                    // the message is initiated"
                    self.phase1_failed(ctx, transid);
                    return;
                }
            }
        }
    }

    fn phase1_ack(&mut self, ctx: &mut PairCtx<'_, '_>, transid: Transid) {
        let Some(t) = self.txns.get_mut(&transid) else {
            return;
        };
        if t.state != TxState::Ending {
            return; // aborted meanwhile
        }
        t.outstanding_phase1 = t.outstanding_phase1.saturating_sub(1);
        ctx.flight(transid.flight_id(), FlightCause::Phase1VolumeDone);
        if t.outstanding_phase1 == 0 {
            self.phase1_complete(ctx, transid);
        }
    }

    fn phase1_failed(&mut self, ctx: &mut PairCtx<'_, '_>, transid: Transid) {
        if matches!(
            self.txns.get(&transid).map(|t| t.state),
            Some(TxState::Ending) | Some(TxState::Active)
        ) {
            self.abort_txn(ctx, transid, AbortReason::Phase1Failure);
        }
    }

    /// Every participant has forced its audit: the transaction reaches its
    /// commit (home) or phase-one-acknowledged (non-home) point.
    fn phase1_complete(&mut self, ctx: &mut PairCtx<'_, '_>, transid: Transid) {
        let Some(t) = self.txns.get(&transid) else {
            return;
        };
        if t.home {
            // The decision is commit and can no longer be overtaken:
            // enter COMMITTING — set_state checkpoints the state to the
            // backup *before* any lock is released, so a takeover can
            // never presume abort for a transaction whose locks are gone
            // (DESIGN.md §D12) — then release local record locks without
            // waiting for the commit record's force to finish spinning.
            self.set_state(ctx, transid, TxState::Committing);
            self.early_release_locks(ctx, transid);
            // write the commit record: one forced monitor-trail write
            self.schedule_monitor_write(ctx, transid, true);
        } else {
            // acknowledge phase one to the parent; from here on this node
            // cannot unilaterally abort
            if let Some((req_id, from)) = self.txns.get_mut(&transid).and_then(|t| t.end_waiter.take())
            {
                self.answer(ctx, req_id, from, TmpReply::Phase1Ok);
            }
        }
    }

    /// Release the local record locks of a COMMITTING transaction ahead
    /// of phase two. Sound because COMMITTING has no abort successor and
    /// was checkpointed before this call: whatever fails from here on,
    /// the surviving TMP half finishes the commit. The terminal delivery
    /// set still re-sends ReleaseLocks (receivers are idempotent), so
    /// nothing is lost if these rpcs die with the primary.
    fn early_release_locks(&mut self, ctx: &mut PairCtx<'_, '_>, transid: Transid) {
        let Some(t) = self.txns.get(&transid) else {
            return;
        };
        let volumes = t.volumes.clone();
        for v in volumes {
            ctx.count("tmf.msgs.release_early", 1);
            let id = self.disc_rpc.call_persistent(
                ctx,
                Target::Named(v.node, v.volume.clone()),
                DiscRequest::ReleaseLocks {
                    transid,
                    commit: true,
                },
                self.cfg.safe_retry,
                0,
            );
            self.early_releases.insert(id, transid);
        }
    }

    fn schedule_monitor_write(&mut self, ctx: &mut PairCtx<'_, '_>, transid: Transid, commit: bool) {
        ctx.flight(transid.flight_id(), FlightCause::MonitorEnqueued);
        if self.cfg.group_commit_window == SimDuration::ZERO {
            // one force per completion record: the pre-boxcar path, kept
            // byte-identical so window=0 reproduces historical traces
            let tag = TAG_MONITOR_BASE + self.next_tag;
            self.next_tag += 1;
            self.monitor_timers.insert(tag, (transid, commit));
            let latency = ctx.config().disc_access;
            ctx.set_timer(latency, tag);
            ctx.count("tmf.monitor_forces", 1);
            return;
        }
        self.monitor_boxcar.push((transid, commit));
        self.maybe_start_monitor_force(ctx);
    }

    fn maybe_start_monitor_force(&mut self, ctx: &mut PairCtx<'_, '_>) {
        if self.monitor_inflight.is_some() || self.monitor_boxcar.is_empty() {
            return;
        }
        if self.monitor_boxcar.len() < self.cfg.group_commit_max {
            // hold the boxcar open for other transactions reaching their
            // completion point; the recorded deadline lets on_timer tell
            // this boxcar's own window expiry apart from stale timers of
            // earlier, max-filled boxcars
            if self.monitor_window_deadline.is_none() {
                self.monitor_window_deadline = Some(ctx.now() + self.cfg.group_commit_window);
                ctx.set_timer(self.cfg.group_commit_window, TAG_MONITOR_WINDOW);
            }
            return;
        }
        self.start_monitor_force(ctx);
    }

    /// Start the single physical force for everything in the boxcar.
    fn start_monitor_force(&mut self, ctx: &mut PairCtx<'_, '_>) {
        self.monitor_window_deadline = None;
        let batch = std::mem::take(&mut self.monitor_boxcar);
        ctx.count("tmf.monitor_forces", 1);
        ctx.observe_handle(&self.boxcar_hist, batch.len() as u64);
        for &(transid, _) in &batch {
            ctx.flight(transid.flight_id(), FlightCause::MonitorForceStart);
        }
        self.monitor_inflight = Some(batch);
        let latency = ctx.config().disc_access;
        ctx.set_timer(latency, TAG_MONITOR_FLUSH);
    }

    /// The boxcarred force reached the platter: every surviving record in
    /// the batch becomes durable at once, under ONE trail force.
    fn monitor_flush(&mut self, ctx: &mut PairCtx<'_, '_>) {
        let Some(batch) = self.monitor_inflight.take() else {
            return;
        };
        // The state at write completion is authoritative, exactly as in
        // monitor_written: an abort may have overtaken a boxcarred commit.
        let mut writable: Vec<(Transid, bool)> = Vec::new();
        for &(transid, commit) in &batch {
            let state = self.txns.get(&transid).map(|t| t.state);
            if commit
                && !matches!(state, Some(TxState::Ending) | Some(TxState::Committing))
            {
                ctx.count("tmf.commit_overtaken_by_abort", 1);
                continue;
            }
            if !commit && state != Some(TxState::Aborting) {
                continue;
            }
            writable.push((transid, commit));
        }
        let node = ctx.node();
        let now = ctx.now();
        MonitorTrail::of(ctx.stable(), node).record_group(&writable, now);
        let boxcar = writable.len() as u32;
        for (transid, commit) in writable {
            ctx.flight(transid.flight_id(), FlightCause::MonitorForced { boxcar });
            if commit {
                ctx.count("tmf.commits", 1);
                self.finish_commit(ctx, transid);
            } else {
                ctx.count("tmf.aborts", 1);
                self.finish_abort_home(ctx, transid);
            }
        }
        // records that arrived while this force was spinning form the next
        // boxcar; they have already waited, so force without a new window
        if !self.monitor_boxcar.is_empty() {
            self.start_monitor_force(ctx);
        }
    }

    /// The commit/abort record is now on the Monitor Audit Trail.
    fn monitor_written(&mut self, ctx: &mut PairCtx<'_, '_>, transid: Transid, commit: bool) {
        // the write was scheduled when the decision was taken, but an
        // abort may have overtaken a pending commit (e.g. the requester's
        // processor failed while the record was in flight): the state at
        // write completion is authoritative, and a commit record may only
        // be written for a transaction still in "ending" (or its
        // committing refinement) state
        let state = self.txns.get(&transid).map(|t| t.state);
        if commit && !matches!(state, Some(TxState::Ending) | Some(TxState::Committing)) {
            ctx.count("tmf.commit_overtaken_by_abort", 1);
            return;
        }
        if !commit && state != Some(TxState::Aborting) {
            return;
        }
        let node = ctx.node();
        let now = ctx.now();
        MonitorTrail::of(ctx.stable(), node).record(transid, commit, now);
        ctx.flight(transid.flight_id(), FlightCause::MonitorForced { boxcar: 1 });
        if commit {
            ctx.count("tmf.commits", 1);
            self.finish_commit(ctx, transid);
        } else {
            ctx.count("tmf.aborts", 1);
            self.finish_abort_home(ctx, transid);
        }
    }

    /// Phase two: release locks everywhere, complete END-TRANSACTION.
    fn finish_commit(&mut self, ctx: &mut PairCtx<'_, '_>, transid: Transid) {
        let now = ctx.now();
        if let Some(at) = self.txns.get_mut(&transid).and_then(|t| t.ending_at.take()) {
            ctx.observe_handle(&self.latency_hist, now.since(at).as_micros());
        }
        ctx.flight(transid.flight_id(), FlightCause::Committed);
        self.set_state(ctx, transid, TxState::Ended);
        let Some(t) = self.txns.get_mut(&transid) else {
            return;
        };
        let waiter = t.end_waiter.take();
        // abort requests that arrived while COMMITTING could no longer
        // win; they learn the transaction's fate instead
        let aborters: Vec<(u64, Pid)> = t.abort_waiters.drain(..).collect();
        // END-TRANSACTION completes now; phase two is safe-delivery and
        // its completion is not awaited
        if let Some((req_id, from)) = waiter {
            self.answer(ctx, req_id, from, TmpReply::Committed);
        }
        for (req_id, from) in aborters {
            self.answer(ctx, req_id, from, TmpReply::Committed);
        }
        self.send_terminal_deliveries(ctx, transid);
    }

    /// Safe-delivery of a terminal disposition: release locks on every
    /// participating volume and propagate Phase2/AbortTxn to the children.
    /// The entry is only dropped once every delivery is acknowledged — a
    /// takeover finds the terminal entry in the checkpointed table and
    /// re-sends, so an outcome is never lost with a failed primary.
    fn send_terminal_deliveries(&mut self, ctx: &mut PairCtx<'_, '_>, transid: Transid) {
        let Some(t) = self.txns.get(&transid) else {
            return;
        };
        let committed = t.state == TxState::Ended;
        let class = t.class;
        let volumes = t.volumes.clone();
        let children: Vec<NodeId> = if t.home {
            t.children.iter().copied().collect()
        } else {
            Vec::new()
        };
        let mut pending = 0usize;
        for v in volumes {
            ctx.count("tmf.msgs.release_local", 1);
            let id = self.disc_rpc.call_persistent(
                ctx,
                Target::Named(v.node, v.volume.clone()),
                DiscRequest::ReleaseLocks {
                    transid,
                    commit: committed,
                },
                self.cfg.safe_retry,
                0,
            );
            self.deliveries.insert(id, transid);
            pending += 1;
        }
        for child in children {
            // A committed read-only parent never ran phase one, so its
            // children are still Active — Phase2 would be silently ignored
            // there and the child's shared locks would leak until the
            // janitor's presumed-abort sweep. AbortTxn drives the Active
            // child straight through backout (it has no images) and frees
            // its locks promptly; the outcome is identical because the
            // transaction wrote nothing anywhere.
            let msg = if committed && class == TxnClass::ReadWrite {
                ctx.count("tmf.msgs.phase2_net", 1);
                TmpMsg::Phase2 { transid }
            } else {
                ctx.count("tmf.msgs.abort_net", 1);
                TmpMsg::AbortTxn { transid }
            };
            let id = self.tmp_rpc.call_persistent(
                ctx,
                Target::Named(child, "$TMP".into()),
                msg,
                self.cfg.safe_retry,
                0,
            );
            self.deliveries.insert(id, transid);
            pending += 1;
        }
        if let Some(t) = self.txns.get_mut(&transid) {
            t.pending_deliveries = pending;
        }
        if pending == 0 {
            self.forget_txn(ctx, transid);
        }
    }

    /// Phase two is fully acknowledged: the transid leaves the system.
    fn forget_txn(&mut self, ctx: &mut PairCtx<'_, '_>, transid: Transid) {
        self.txns.remove(&transid);
        self.checkpoint_txn(ctx, transid, true);
    }

    fn delivery_acked(&mut self, ctx: &mut PairCtx<'_, '_>, transid: Transid) {
        let done = match self.txns.get_mut(&transid) {
            Some(t) => {
                t.pending_deliveries = t.pending_deliveries.saturating_sub(1);
                t.pending_deliveries == 0 && t.state.is_terminal()
            }
            None => false,
        };
        if done {
            self.forget_txn(ctx, transid);
        }
    }

    // ------------------------------------------------------------------
    // Abort protocol
    // ------------------------------------------------------------------

    fn abort_txn(&mut self, ctx: &mut PairCtx<'_, '_>, transid: Transid, reason: AbortReason) {
        let Some(t) = self.txns.get_mut(&transid) else {
            return;
        };
        if !t.state.can_become(TxState::Aborting) {
            return;
        }
        t.abort_reason = Some(reason);
        let volumes = t.volumes.clone();
        let children: Vec<NodeId> = t.children.iter().copied().collect();
        self.set_state(ctx, transid, TxState::Aborting);
        ctx.count("tmf.abort_started", 1);
        if !volumes.is_empty() {
            ctx.flight(transid.flight_id(), FlightCause::BackoutStart);
        }
        // abort notifications to children are safe-delivery
        for child in children {
            ctx.count("tmf.msgs.abort_net", 1);
            self.tmp_rpc.call_persistent(
                ctx,
                Target::Named(child, "$TMP".into()),
                TmpMsg::AbortTxn { transid },
                self.cfg.safe_retry,
                0,
            );
        }
        if volumes.is_empty() {
            self.backout_done(ctx, transid);
        } else {
            let audit_services = volumes.iter().map(|v| self.audit_service(v)).collect();
            let node = ctx.node();
            let id = self.backout_rpc.call_persistent(
                ctx,
                Target::Named(node, self.cfg.backout_service.clone()),
                BackoutMsg::Backout {
                    transid,
                    volumes,
                    audit_services,
                },
                self.cfg.safe_retry,
                0,
            );
            self.backouts.insert(id, transid);
        }
    }

    fn backout_done(&mut self, ctx: &mut PairCtx<'_, '_>, transid: Transid) {
        let Some(t) = self.txns.get(&transid) else {
            return;
        };
        if t.state != TxState::Aborting {
            return;
        }
        let home = t.home;
        ctx.flight(transid.flight_id(), FlightCause::BackoutDone);
        // lock release is part of the terminal safe-delivery set (sent in
        // finish_abort_*), so a takeover between backout and release still
        // re-drives it
        if home {
            // record the abort on the monitor trail, then answer waiters
            self.schedule_monitor_write(ctx, transid, false);
        } else {
            self.finish_abort_nonhome(ctx, transid);
        }
    }

    fn finish_abort_home(&mut self, ctx: &mut PairCtx<'_, '_>, transid: Transid) {
        ctx.flight(transid.flight_id(), FlightCause::Aborted);
        self.set_state(ctx, transid, TxState::Aborted);
        if let Some(t) = self.txns.get_mut(&transid) {
            let waiters: Vec<(u64, Pid)> = t
                .end_waiter
                .take()
                .into_iter()
                .chain(t.abort_waiters.drain(..))
                .collect();
            for (req_id, from) in waiters {
                self.answer(ctx, req_id, from, TmpReply::Aborted);
            }
        }
        self.send_terminal_deliveries(ctx, transid);
    }

    fn finish_abort_nonhome(&mut self, ctx: &mut PairCtx<'_, '_>, transid: Transid) {
        ctx.flight(transid.flight_id(), FlightCause::Aborted);
        self.set_state(ctx, transid, TxState::Aborted);
        // record the disposition on this node's trail so late retries
        // (e.g. a duplicate RegisterVolume) see a completed transaction
        let node = ctx.node();
        let now = ctx.now();
        MonitorTrail::of(ctx.stable(), node).record(transid, false, now);
        let (phase1_waiter, abort_waiters) = match self.txns.get_mut(&transid) {
            Some(t) => (t.end_waiter.take(), std::mem::take(&mut t.abort_waiters)),
            None => (None, Vec::new()),
        };
        // a pending Phase1 request is answered with refusal — forcing
        // network consensus to abort...
        if let Some((req_id, from)) = phase1_waiter {
            self.answer(ctx, req_id, from, TmpReply::Phase1Refused);
        }
        // ...but session Abort requesters get the abort they asked for
        for (req_id, from) in abort_waiters {
            self.answer(ctx, req_id, from, TmpReply::Aborted);
        }
        self.send_terminal_deliveries(ctx, transid);
    }

    // ------------------------------------------------------------------
    // Request handling
    // ------------------------------------------------------------------

    fn handle(&mut self, ctx: &mut PairCtx<'_, '_>, req_id: u64, from: Pid, msg: TmpMsg) {
        match msg {
            TmpMsg::Begin { cpu, class } => {
                self.seq += 1;
                let transid = Transid {
                    home_node: ctx.node(),
                    cpu,
                    seq: self.seq,
                };
                self.txns.insert(transid, Txn::new(true, class));
                ctx.count("tmf.begins", 1);
                ctx.flight(transid.flight_id(), FlightCause::Begin);
                self.set_state(ctx, transid, TxState::Active);
                self.answer(ctx, req_id, from, TmpReply::Began { transid });
            }
            TmpMsg::RegisterVolume { transid, volume } => {
                // A late or retried registration for a transaction that
                // already committed or aborted must not resurrect it as a
                // phantom Active entry: for unknown transids, the Monitor
                // Audit Trail is the authority on completion.
                if !self.txns.contains_key(&transid) {
                    let node = ctx.node();
                    if MonitorTrail::of(ctx.stable(), node)
                        .outcome(transid)
                        .is_some()
                    {
                        ctx.count("tmf.register_after_completion", 1);
                        self.answer(ctx, req_id, from, TmpReply::Failed);
                        return;
                    }
                }
                let home = transid.home_node == volume.node;
                let (ok, changed) = {
                    let t = self
                        .txns
                        .entry(transid)
                        .or_insert_with(|| Txn::new(home, TxnClass::ReadWrite));
                    if t.state != TxState::Active {
                        (false, false)
                    } else if t.volumes.contains(&volume) {
                        (true, false)
                    } else {
                        t.volumes.push(volume);
                        (true, true)
                    }
                };
                if changed {
                    self.checkpoint_txn(ctx, transid, false);
                }
                let r = if ok { TmpReply::Ok } else { TmpReply::Failed };
                self.answer(ctx, req_id, from, r);
            }
            TmpMsg::EnsureRemoteSend { transid, dest } => {
                let my_node = ctx.node();
                let Some(t) = self.txns.get(&transid) else {
                    self.answer(ctx, req_id, from, TmpReply::Failed);
                    return;
                };
                if t.state != TxState::Active {
                    self.answer(ctx, req_id, from, TmpReply::Failed);
                    return;
                }
                if dest == my_node || t.children.contains(&dest) {
                    self.answer(ctx, req_id, from, TmpReply::Ok);
                    return;
                }
                ctx.count("tmf.msgs.remote_begin", 1);
                match self.tmp_rpc.call(
                    ctx,
                    Target::Named(dest, "$TMP".into()),
                    TmpMsg::RemoteBegin { transid },
                    self.cfg.critical_timeout,
                    self.cfg.critical_retries,
                    0,
                ) {
                    Ok(id) => {
                        self.remote_begins.insert(id, (transid, dest, req_id, from));
                    }
                    Err(_) => self.answer(ctx, req_id, from, TmpReply::Failed),
                }
            }
            TmpMsg::End { transid } => {
                match self.txns.get(&transid).map(|t| t.state) {
                    None => {
                        // already completed: the monitor trail is the truth
                        let node = ctx.node();
                        let outcome = MonitorTrail::of(ctx.stable(), node).outcome(transid);
                        let r = match outcome {
                            Some(true) => TmpReply::Committed,
                            _ => TmpReply::Aborted,
                        };
                        self.answer(ctx, req_id, from, r);
                    }
                    Some(TxState::Active) => {
                        let now = ctx.now();
                        let class = self
                            .txns
                            .get(&transid)
                            .map(|t| t.class)
                            .unwrap_or_default();
                        if let Some(t) = self.txns.get_mut(&transid) {
                            t.end_waiter = Some((req_id, from));
                            t.ending_at = Some(now);
                        }
                        ctx.flight(transid.flight_id(), FlightCause::EndRequested);
                        self.set_state(ctx, transid, TxState::Ending);
                        ctx.count("tmf.ends", 1);
                        match class {
                            TxnClass::ReadWrite => self.start_phase1(ctx, transid),
                            TxnClass::ReadOnly => {
                                // A transaction that wrote nothing has
                                // nothing to make durable: no phase one, no
                                // forced commit record. END-TRANSACTION
                                // resolves locally; the terminal delivery
                                // set still frees any shared locks it took
                                // (DESIGN.md §D13).
                                ctx.count("tmf.commits", 1);
                                ctx.count("tmf.readonly_commits", 1);
                                self.finish_commit(ctx, transid);
                            }
                        }
                    }
                    Some(TxState::Ending) | Some(TxState::Committing) => {
                        if let Some(t) = self.txns.get_mut(&transid) {
                            t.end_waiter = Some((req_id, from)); // retried End
                        }
                    }
                    Some(TxState::Aborting) => {
                        if let Some(t) = self.txns.get_mut(&transid) {
                            t.abort_waiters.push((req_id, from));
                        }
                    }
                    Some(TxState::Ended) => self.answer(ctx, req_id, from, TmpReply::Committed),
                    Some(TxState::Aborted) => self.answer(ctx, req_id, from, TmpReply::Aborted),
                }
            }
            TmpMsg::Abort { transid, reason } => {
                match self.txns.get(&transid).map(|t| (t.state, t.home)) {
                    None => {
                        let node = ctx.node();
                        let outcome = MonitorTrail::of(ctx.stable(), node).outcome(transid);
                        let r = match outcome {
                            Some(true) => TmpReply::Committed,
                            _ => TmpReply::Aborted,
                        };
                        self.answer(ctx, req_id, from, r);
                    }
                    Some((TxState::Ended, _)) => {
                        self.answer(ctx, req_id, from, TmpReply::Committed)
                    }
                    Some((TxState::Aborted, _)) => {
                        self.answer(ctx, req_id, from, TmpReply::Aborted)
                    }
                    Some((TxState::Ending, false)) => {
                        // after phase-one ack a non-home node may not
                        // unilaterally abort
                        self.answer(ctx, req_id, from, TmpReply::Failed);
                    }
                    Some(_) => {
                        if let Some(t) = self.txns.get_mut(&transid) {
                            t.abort_waiters.push((req_id, from));
                        }
                        self.abort_txn(ctx, transid, reason);
                    }
                }
            }
            TmpMsg::QueryDisposition { transid } => {
                let state = match self.txns.get(&transid) {
                    Some(t) => Some(t.state),
                    None => {
                        let node = ctx.node();
                        MonitorTrail::of(ctx.stable(), node)
                            .outcome(transid)
                            .map(|c| if c { TxState::Ended } else { TxState::Aborted })
                    }
                };
                // utility query: not cached (idempotent)
                reply(ctx, req_id, from, TmpReply::Disposition { state });
            }
            TmpMsg::ForceDisposition { transid, commit } => {
                ctx.count("tmf.force_disposition", 1);
                let state = self.txns.get(&transid).map(|t| t.state);
                if commit {
                    if matches!(state, Some(TxState::Ending) | Some(TxState::Committing)) {
                        if let Some(t) = self.txns.get_mut(&transid) {
                            t.end_waiter = None;
                        }
                        self.monitor_written(ctx, transid, true);
                    }
                } else if state.is_some() && state != Some(TxState::Committing) {
                    // break the in-doubt hold — but a COMMITTING
                    // transaction already released locks against a
                    // durable commit decision, so even the operator may
                    // not turn it into an abort
                    if let Some(t) = self.txns.get_mut(&transid) {
                        t.state = TxState::Active; // permit Aborting transition
                    }
                    self.abort_txn(ctx, transid, AbortReason::OperatorOverride);
                }
                self.answer(ctx, req_id, from, TmpReply::Ok);
            }
            TmpMsg::ListOpen => {
                let transids: Vec<Transid> = self.txns.keys().copied().collect();
                // utility query: not cached (idempotent)
                reply(ctx, req_id, from, TmpReply::Open { transids });
            }
            TmpMsg::StateAudit => {
                let report = TmpStateReport {
                    txns: self.txns.len(),
                    terminal_txns: self
                        .txns
                        .values()
                        .filter(|t| matches!(t.state, TxState::Ended | TxState::Aborted))
                        .count(),
                    monitor_boxcar: self.monitor_boxcar.len(),
                    monitor_inflight: self
                        .monitor_inflight
                        .as_ref()
                        .map(|b| b.len())
                        .unwrap_or(0),
                    deliveries: self.deliveries.len(),
                    early_releases: self.early_releases.len(),
                    backouts: self.backouts.len(),
                    phase1_disc: self.phase1_disc.len(),
                    phase1_tmp: self.phase1_tmp.len(),
                    remote_begins: self.remote_begins.len(),
                    janitor_rpcs: self.janitor_rpcs.len(),
                    purge_rpcs: self.purge_rpcs.len(),
                    reply_cache: self.replies.entries().len(),
                };
                // utility query: not cached (idempotent)
                reply(ctx, req_id, from, TmpReply::State(report));
            }
            TmpMsg::RemoteBegin { transid } => {
                ctx.count("tmf.remote_begins_received", 1);
                let known = self.txns.contains_key(&transid);
                if !known {
                    // Non-home entries default to read-write: the class only
                    // matters on the home node (END protocol choice) and in
                    // terminal deliveries, which a read-only parent answers
                    // with AbortTxn regardless of what this entry believes.
                    self.txns.insert(transid, Txn::new(false, TxnClass::ReadWrite));
                    self.set_state(ctx, transid, TxState::Active);
                }
                self.answer(ctx, req_id, from, TmpReply::Ok);
            }
            TmpMsg::Phase1 { transid } => {
                match self.txns.get(&transid).map(|t| t.state) {
                    None => {
                        // the monitor trail may know a completed outcome
                        let node = ctx.node();
                        let outcome = MonitorTrail::of(ctx.stable(), node).outcome(transid);
                        let r = match outcome {
                            Some(true) => TmpReply::Phase1Ok,
                            _ => TmpReply::Phase1Refused,
                        };
                        self.answer(ctx, req_id, from, r);
                    }
                    Some(TxState::Active) => {
                        if let Some(t) = self.txns.get_mut(&transid) {
                            t.end_waiter = Some((req_id, from));
                        }
                        self.set_state(ctx, transid, TxState::Ending);
                        self.start_phase1(ctx, transid);
                    }
                    Some(TxState::Ending) => {
                        if let Some(t) = self.txns.get_mut(&transid) {
                            t.end_waiter = Some((req_id, from));
                        }
                    }
                    Some(TxState::Ended) | Some(TxState::Committing) => {
                        self.answer(ctx, req_id, from, TmpReply::Phase1Ok)
                    }
                    Some(TxState::Aborting) | Some(TxState::Aborted) => {
                        self.answer(ctx, req_id, from, TmpReply::Phase1Refused)
                    }
                }
            }
            TmpMsg::Phase2 { transid } => {
                // safe-delivery: ack receipt, then apply
                self.answer(ctx, req_id, from, TmpReply::Ok);
                if let Some(t) = self.txns.get(&transid) {
                    if t.state == TxState::Ending {
                        // the home node committed: record it here too and
                        // release local locks
                        let node = ctx.node();
                        let now = ctx.now();
                        MonitorTrail::of(ctx.stable(), node).record(transid, true, now);
                        self.finish_commit(ctx, transid);
                    }
                }
            }
            TmpMsg::AbortTxn { transid } => {
                // safe-delivery: ack receipt, then apply
                self.answer(ctx, req_id, from, TmpReply::Ok);
                if self.txns.contains_key(&transid) {
                    self.abort_txn(ctx, transid, AbortReason::Phase1Failure);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // RPC completion routing
    // ------------------------------------------------------------------

    fn on_disc_completion(&mut self, ctx: &mut PairCtx<'_, '_>, id: u64, body: DiscReply) {
        if let Some(transid) = self.phase1_disc.remove(&id) {
            match body {
                DiscReply::Phase1Done => self.phase1_ack(ctx, transid),
                _ => self.phase1_failed(ctx, transid),
            }
            return;
        }
        if self.early_releases.remove(&id).is_some() {
            return; // informational only; terminal deliveries re-send
        }
        if let Some(transid) = self.deliveries.remove(&id) {
            self.delivery_acked(ctx, transid);
        }
    }

    fn on_tmp_completion(&mut self, ctx: &mut PairCtx<'_, '_>, id: u64, body: TmpReply) {
        if let Some((transid, _child)) = self.phase1_tmp.remove(&id) {
            match body {
                TmpReply::Phase1Ok => self.phase1_ack(ctx, transid),
                _ => self.phase1_failed(ctx, transid),
            }
            return;
        }
        if let Some((transid, dest, req_id, from)) = self.remote_begins.remove(&id) {
            match body {
                TmpReply::Ok => {
                    if let Some(t) = self.txns.get_mut(&transid) {
                        t.children.insert(dest);
                        self.checkpoint_txn(ctx, transid, false);
                        self.answer(ctx, req_id, from, TmpReply::Ok);
                    } else {
                        self.answer(ctx, req_id, from, TmpReply::Failed);
                    }
                }
                _ => self.answer(ctx, req_id, from, TmpReply::Failed),
            }
            return;
        }
        if let Some(transid) = self.deliveries.remove(&id) {
            self.delivery_acked(ctx, transid);
            return;
        }
        if let Some(transid) = self.janitor_rpcs.remove(&id) {
            if let TmpReply::Disposition { state } = body {
                self.resolve_indoubt(ctx, transid, state);
            }
        }
    }

    /// The home node answered an in-doubt query about a non-home entry.
    /// Only authoritative answers act: a terminal state, or no record at
    /// all — the commit record is forced to stable storage before any
    /// commit completes, so "never heard of it" can only mean the
    /// transaction never committed (presumed abort).
    fn resolve_indoubt(
        &mut self,
        ctx: &mut PairCtx<'_, '_>,
        transid: Transid,
        home_state: Option<TxState>,
    ) {
        let local = match self.txns.get(&transid) {
            Some(t) if !t.home => t.state,
            _ => return,
        };
        if !matches!(local, TxState::Active | TxState::Ending) {
            return;
        }
        match home_state {
            Some(TxState::Ended) => {
                ctx.count("tmf.indoubt_commits", 1);
                let node = ctx.node();
                let now = ctx.now();
                MonitorTrail::of(ctx.stable(), node).record(transid, true, now);
                self.finish_commit(ctx, transid);
            }
            Some(TxState::Aborted) | None => {
                ctx.count("tmf.indoubt_aborts", 1);
                if let Some(t) = self.txns.get_mut(&transid) {
                    t.state = TxState::Active; // permit the Aborting transition
                }
                self.abort_txn(ctx, transid, AbortReason::Phase1Failure);
            }
            _ => {} // still in progress at home: leave it alone
        }
    }

    /// Periodic sweep: query the home node about non-home entries that
    /// made no progress since the previous sweep. This catches outcomes
    /// whose safe-delivery died with a home TMP processor, and phantom
    /// entries resurrected by stale RemoteBegin retransmissions.
    fn janitor_tick(&mut self, ctx: &mut PairCtx<'_, '_>) {
        let in_flight: Vec<Transid> = self.janitor_rpcs.values().copied().collect();
        let stale: Vec<(Transid, NodeId)> = self
            .txns
            .iter_mut()
            .filter(|(t, e)| {
                !e.home
                    && matches!(e.state, TxState::Active | TxState::Ending)
                    && !in_flight.contains(t)
            })
            .filter_map(|(t, e)| {
                if e.janitor_armed {
                    Some((*t, t.home_node))
                } else {
                    e.janitor_armed = true;
                    None
                }
            })
            .collect();
        for (transid, home) in stale {
            ctx.count("tmf.indoubt_probes", 1);
            if let Ok(id) = self.tmp_rpc.call(
                ctx,
                Target::Named(home, "$TMP".into()),
                TmpMsg::QueryDisposition { transid },
                self.cfg.critical_timeout,
                self.cfg.critical_retries,
                1,
            ) {
                self.janitor_rpcs.insert(id, transid);
            }
        }
    }

    /// Audit-trail capacity sweep. Per local audit service, report every
    /// volume's purge floor from its *latest completed* dump — every
    /// trail record below a dump's floor was taken by a transaction that
    /// released its locks before the dump began, so its effects are fully
    /// inside the archive image and neither ROLLFORWARD nor backout can
    /// ever need it. The AUDITPROCESS groups the floors by trail
    /// partition and cuts each partition independently (skipping any with
    /// an undumped volume), clamped below the oldest open transaction's
    /// first image on that partition.
    fn purge_tick(&mut self, ctx: &mut PairCtx<'_, '_>) {
        let node = ctx.node();
        let mut floors_by_service: BTreeMap<String, Vec<(String, Option<u64>)>> = BTreeMap::new();
        let services: Vec<(String, String)> = self
            .cfg
            .audit_service_of
            .iter()
            .map(|(v, s)| (v.clone(), s.clone()))
            .collect();
        for (volume, service) in services {
            let key = dump_registry_key(&VolumeRef::new(node, &volume));
            let floor = ctx.stable().get::<DumpRegistry>(&key).map(|r| r.purge_floor);
            floors_by_service
                .entry(service)
                .or_default()
                .push((volume, floor));
        }
        let open: Vec<Transid> = self.txns.keys().copied().collect();
        for (service, floors) in floors_by_service {
            // no volume has a purgeable floor yet: spare the message
            if !floors.iter().any(|(_, f)| matches!(f, Some(f) if *f > 1)) {
                continue;
            }
            ctx.count("tmf.purge_requests", 1);
            let id = self.audit_rpc.call_persistent(
                ctx,
                Target::Named(node, service),
                AuditMsg::Purge {
                    floors,
                    open: open.clone(),
                },
                self.cfg.safe_retry,
                0,
            );
            self.purge_rpcs.insert(id);
        }
    }

    fn on_audit_completion(&mut self, ctx: &mut PairCtx<'_, '_>, id: u64, body: AuditReply) {
        if self.purge_rpcs.remove(&id) {
            if let AuditReply::Purged { files } = body {
                ctx.count("tmf.purged_trail_files", files);
            }
        }
    }

    fn on_backout_completion(&mut self, ctx: &mut PairCtx<'_, '_>, id: u64) {
        if let Some(transid) = self.backouts.remove(&id) {
            self.backout_done(ctx, transid);
        }
    }

    fn on_rpc_expired(&mut self, ctx: &mut PairCtx<'_, '_>, id: u64) {
        if let Some(transid) = self.phase1_disc.remove(&id) {
            self.phase1_failed(ctx, transid);
        } else if let Some((transid, _)) = self.phase1_tmp.remove(&id) {
            ctx.count("tmf.phase1_timeouts", 1);
            self.phase1_failed(ctx, transid);
        } else if let Some((transid, _dest, req_id, from)) = self.remote_begins.remove(&id) {
            ctx.count("tmf.remote_begin_timeouts", 1);
            let _ = transid;
            self.answer(ctx, req_id, from, TmpReply::Failed);
        } else {
            // an unreachable home node fails an in-doubt probe: the next
            // sweep simply retries
            self.janitor_rpcs.remove(&id);
        }
    }
}

impl PairApp for TmpProcess {
    fn service_name(&self) -> String {
        "$TMP".into()
    }

    fn kind(&self) -> &'static str {
        "tmp"
    }

    fn on_request(&mut self, ctx: &mut PairCtx<'_, '_>, _src: Pid, payload: Payload) {
        let payload = match self.disc_rpc.accept(ctx, payload) {
            Ok(c) => {
                self.on_disc_completion(ctx, c.id, c.body);
                return;
            }
            Err(p) => p,
        };
        let payload = match self.tmp_rpc.accept(ctx, payload) {
            Ok(c) => {
                self.on_tmp_completion(ctx, c.id, c.body);
                return;
            }
            Err(p) => p,
        };
        let payload = match self.backout_rpc.accept(ctx, payload) {
            Ok(c) => {
                self.on_backout_completion(ctx, c.id);
                return;
            }
            Err(p) => p,
        };
        let payload = match self.audit_rpc.accept(ctx, payload) {
            Ok(c) => {
                self.on_audit_completion(ctx, c.id, c.body);
                return;
            }
            Err(p) => p,
        };
        if !payload.is::<Request<TmpMsg>>() {
            return;
        }
        let req = payload.expect::<Request<TmpMsg>>();
        if let Some(cached) = self.replies.check(req.id) {
            reply(ctx, req.id, req.from, cached);
            return;
        }
        self.handle(ctx, req.id, req.from, req.body);
    }

    fn on_primary_start(&mut self, ctx: &mut PairCtx<'_, '_>) {
        ctx.set_timer(self.cfg.indoubt_probe, TAG_JANITOR);
        if self.cfg.purge_interval > SimDuration::ZERO {
            ctx.set_timer(self.cfg.purge_interval, TAG_PURGE);
        }
    }

    fn on_timer(&mut self, ctx: &mut PairCtx<'_, '_>, tag: u64) {
        if tag == TAG_JANITOR {
            self.janitor_tick(ctx);
            ctx.set_timer(self.cfg.indoubt_probe, TAG_JANITOR);
            return;
        }
        if tag == TAG_PURGE {
            self.purge_tick(ctx);
            ctx.set_timer(self.cfg.purge_interval, TAG_PURGE);
            return;
        }
        if tag == TAG_MONITOR_WINDOW {
            // ignore stale firings armed for an earlier boxcar that
            // already forced (filled to group_commit_max before its
            // window elapsed): the accumulating boxcar gets its own full
            // window
            match self.monitor_window_deadline {
                Some(deadline) if ctx.now() >= deadline => {
                    self.monitor_window_deadline = None;
                    if self.monitor_inflight.is_none() && !self.monitor_boxcar.is_empty() {
                        self.start_monitor_force(ctx);
                    }
                }
                _ => ctx.count("tmf.stale_monitor_window_ignored", 1),
            }
            return;
        }
        if tag == TAG_MONITOR_FLUSH {
            self.monitor_flush(ctx);
            return;
        }
        if let Some((transid, commit)) = self.monitor_timers.remove(&tag) {
            self.monitor_written(ctx, transid, commit);
            return;
        }
        if let guardian::TimerOutcome::Expired { id, .. } = self.disc_rpc.on_timer(ctx, tag) {
            self.on_rpc_expired(ctx, id);
            return;
        }
        if let guardian::TimerOutcome::Expired { id, .. } = self.tmp_rpc.on_timer(ctx, tag) {
            self.on_rpc_expired(ctx, id);
            return;
        }
        if let guardian::TimerOutcome::Expired { id, .. } = self.backout_rpc.on_timer(ctx, tag) {
            self.on_rpc_expired(ctx, id);
            return;
        }
        let _ = self.audit_rpc.on_timer(ctx, tag);
    }

    fn on_system(&mut self, ctx: &mut PairCtx<'_, '_>, ev: SystemEvent) {
        if let SystemEvent::CpuDown(node, cpu) = ev {
            if node != ctx.node() {
                return;
            }
            // "failure of the primary TCP's processor" — abort the active
            // transactions begun on the failed CPU
            let affected: Vec<Transid> = self
                .txns
                .iter()
                .filter(|(t, e)| {
                    e.home && t.cpu == cpu.0 && matches!(e.state, TxState::Active)
                })
                .map(|(t, _)| *t)
                .collect();
            for transid in affected {
                ctx.count("tmf.cpu_failure_aborts", 1);
                self.abort_txn(ctx, transid, AbortReason::CpuFailure);
            }
        }
    }

    fn on_takeover(&mut self, ctx: &mut PairCtx<'_, '_>) {
        ctx.count("tmf.takeovers", 1);
        // re-drive in-flight protocol work from checkpointed state; client
        // rpcs retry so lost waiters re-attach
        self.phase1_disc.clear();
        self.phase1_tmp.clear();
        self.remote_begins.clear();
        self.backouts.clear();
        self.monitor_timers.clear();
        // boxcarred records that never reached the trail die with the
        // primary; the per-state re-drive below recovers each transaction
        // (trail consult for Ending-home, backout re-drive for Aborting)
        self.monitor_boxcar.clear();
        self.monitor_inflight = None;
        self.monitor_window_deadline = None;
        self.deliveries.clear();
        // lost early releases are covered by the terminal delivery resend
        self.early_releases.clear();
        self.janitor_rpcs.clear();
        // a lost purge sweep is simply re-run at the next interval
        self.purge_rpcs.clear();
        let in_flight: Vec<(Transid, TxState, bool, TxnClass)> = self
            .txns
            .iter()
            .map(|(t, e)| (*t, e.state, e.home, e.class))
            .collect();
        for (transid, state, home, class) in in_flight {
            ctx.flight(transid.flight_id(), FlightCause::Takeover);
            match state {
                TxState::Ending if home => {
                    // The commit point is the forced record on the Monitor
                    // Audit Trail, and the primary may have died *after*
                    // writing it but before the drop-checkpoint: consult
                    // the trail before presuming abort.
                    let node = ctx.node();
                    let outcome = MonitorTrail::of(ctx.stable(), node).outcome(transid);
                    if outcome == Some(true) {
                        ctx.count("tmf.takeover_commit_completions", 1);
                        self.finish_commit(ctx, transid);
                    } else {
                        // no commit record on stable storage: presume abort
                        if let Some(t) = self.txns.get_mut(&transid) {
                            t.state = TxState::Active;
                        }
                        self.abort_txn(ctx, transid, AbortReason::CpuFailure);
                    }
                }
                TxState::Ending => { /* wait for the home node's disposition */ }
                TxState::Committing => {
                    // The checkpointed COMMITTING state *is* the commit
                    // decision (locks may already be released), so abort
                    // is out of the question. If the commit record reached
                    // the monitor trail before the primary died, finish;
                    // otherwise re-drive the forced write.
                    let node = ctx.node();
                    let outcome = MonitorTrail::of(ctx.stable(), node).outcome(transid);
                    if outcome == Some(true) {
                        ctx.count("tmf.takeover_commit_completions", 1);
                        self.finish_commit(ctx, transid);
                    } else {
                        ctx.count("tmf.takeover_commit_redrives", 1);
                        self.schedule_monitor_write(ctx, transid, true);
                    }
                }
                TxState::Aborting => {
                    // re-drive the backout
                    if let Some(t) = self.txns.get_mut(&transid) {
                        t.state = TxState::Active;
                    }
                    self.abort_txn(ctx, transid, AbortReason::CpuFailure);
                }
                TxState::Ended | TxState::Aborted => {
                    // the outcome is decided but its safe-delivery set
                    // (phase-2 / abort notices, lock releases) may have died
                    // with the primary; receivers are idempotent, so re-send
                    // everything
                    ctx.count("tmf.takeover_delivery_resends", 1);
                    self.send_terminal_deliveries(ctx, transid);
                }
                TxState::Active if home && class == TxnClass::ReadOnly => {
                    // A read-only session has no durable work in flight and
                    // its snapshot fences died with the primary's session
                    // state: a takeover resolves it as a plain abort and the
                    // requester restarts (DESIGN.md §D13).
                    ctx.count("tmf.takeover_readonly_aborts", 1);
                    self.abort_txn(ctx, transid, AbortReason::CpuFailure);
                }
                TxState::Active => {
                    // still collecting work; the requester's timeout (or the
                    // janitor) decides its fate, not the takeover
                }
            }
        }
    }

    fn apply_checkpoint(&mut self, delta: Payload) {
        let d = delta.expect::<TmpDelta>();
        self.seq = self.seq.max(d.seq);
        if d.drop {
            self.txns.remove(&d.transid);
            return;
        }
        let t = self
            .txns
            .entry(d.transid)
            .or_insert_with(|| Txn::new(d.home, d.class));
        t.state = d.state;
        t.home = d.home;
        t.class = d.class;
        t.volumes = d.volumes;
        t.children = d.children.into_iter().collect();
    }

    fn snapshot(&self) -> Payload {
        Payload::new(TmpSnapshot {
            seq: self.seq,
            txns: self
                .txns
                .iter()
                .map(|(t, e)| {
                    (
                        *t,
                        e.state,
                        e.home,
                        e.class,
                        e.volumes.clone(),
                        e.children.iter().copied().collect(),
                    )
                })
                .collect(),
            replies: self.replies.entries(),
        })
    }

    fn restore(&mut self, snapshot: Payload) {
        let s = snapshot.expect::<TmpSnapshot>();
        self.seq = s.seq;
        self.txns.clear();
        for (transid, state, home, class, volumes, children) in s.txns {
            let mut t = Txn::new(home, class);
            t.state = state;
            t.volumes = volumes;
            t.children = children.into_iter().collect();
            self.txns.insert(transid, t);
        }
        self.replies = ReplyCache::restore(16384, s.replies);
    }
}

/// Spawn a `$TMP` pair on `node`.
pub fn spawn_tmp(
    world: &mut World,
    node: NodeId,
    cpu_primary: u8,
    cpu_backup: u8,
    cfg: TmpConfig,
) -> PairHandle {
    guardian::spawn_pair(world, node, cpu_primary, cpu_backup, move || {
        TmpProcess::new(cfg.clone())
    })
}
