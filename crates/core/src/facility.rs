//! Wiring: spawn a complete TMF node in one call.
//!
//! A TMF node consists of (Figure 2 of the paper, minus the application
//! layer that `encompass` adds):
//!
//! * one `$TMP` pair,
//! * one `$AUDIT` AUDITPROCESS pair (more can be added manually),
//! * one `$BACKOUT` pair,
//! * one DISCPROCESS pair per volume the catalog places on this node,
//! * one transaction table per processor,
//! * one operator process.

use crate::table::TxTableProcess;
use crate::tmp::{spawn_tmp, TmpConfig};
use encompass_audit::auditprocess::{spawn_audit_process, AuditConfig};
use encompass_audit::backout::spawn_backout_process;
use encompass_sim::{
    attribute_commit, CommitAttribution, FlightEvent, FlightTransid, NodeId, SimDuration, World,
};
use encompass_storage::discprocess::{spawn_disc_process, DiscConfig};
use encompass_storage::types::RecoveryMode;
use encompass_storage::Catalog;
use guardian::{OperatorProcess, PairHandle};
use std::collections::BTreeMap;

/// Per-node configuration. Construct with [`TmfNodeConfig::builder`],
/// which validates the knobs; `TmfNodeConfig::default()` is always valid.
#[derive(Clone, Debug)]
pub struct TmfNodeConfig {
    pub recovery_mode: RecoveryMode,
    /// Base audit service name; with `audit_processes > 1` the services
    /// are `<name>0`, `<name>1`, … and volumes are assigned round-robin —
    /// the paper's "all audited discs on a given controller share an
    /// AUDITPROCESS and an audit trail; multiple controllers may be
    /// configured to use the same or different AUDITPROCESSes".
    pub audit_service: String,
    /// Number of AUDITPROCESS pairs (and trails) per node.
    pub audit_processes: usize,
    /// Trail partitions per AUDITPROCESS: each audit service splits its
    /// volumes round-robin into this many volume groups, each with its own
    /// trail media and in-flight force slot so independent groups force in
    /// parallel (DESIGN.md §D12). One partition (the default) reproduces
    /// the single-trail layout byte for byte. Private: set through the
    /// builder so validation always runs.
    audit_partitions: usize,
    /// Critical-response timeout/retries and safe-delivery retry interval.
    pub critical_timeout: SimDuration,
    pub critical_retries: u32,
    pub safe_retry: SimDuration,
    /// DISCPROCESS cache flush interval.
    pub flush_interval: SimDuration,
    /// Group-commit boxcar window applied to both the AUDITPROCESS force
    /// path and the TMP's monitor-trail writes. Zero (the default) forces
    /// every record individually, reproducing pre-boxcar traces. Private:
    /// set through the builder so validation always runs.
    group_commit_window: SimDuration,
    /// Boxcar size that triggers an early force before the window elapses.
    group_commit_max: usize,
    /// Records per ONLINEDUMP page (one disc access each). Private: set
    /// through the builder so validation always runs.
    dump_page_size: usize,
    /// Records per audit-trail file before the AUDITPROCESS rotates to a
    /// new one. Capacity purging drops whole files, so smaller files
    /// purge sooner at the cost of more rotations.
    audit_rotate_every: usize,
    /// Interval of the TMP's trail-capacity purge pass. Zero (the
    /// default) disables purging, preserving historical traces.
    trail_purge_interval: SimDuration,
    /// Archive generations the DUMPPROCESS retains per volume. When a
    /// newer dump supersedes the registry entry, archives older than the
    /// last `archive_retain` generations are deleted from stable storage
    /// — ROLLFORWARD can still restore from any retained generation.
    /// Private: set through the builder so validation always runs.
    archive_retain: u64,
    /// Capacity of each DISCPROCESS's per-volume snapshot before-image
    /// ring (see DESIGN.md §D13). Smaller rings evict fences sooner,
    /// forcing long-lived snapshot readers to restart with
    /// `SnapshotTooOld`. Private: set through the builder so validation
    /// always runs.
    snapshot_undo_capacity: usize,
}

impl Default for TmfNodeConfig {
    fn default() -> Self {
        TmfNodeConfig {
            recovery_mode: RecoveryMode::NonStopCheckpoint,
            audit_service: "$AUDIT".into(),
            audit_processes: 1,
            audit_partitions: 1,
            critical_timeout: SimDuration::from_millis(100),
            critical_retries: 3,
            safe_retry: SimDuration::from_millis(100),
            flush_interval: SimDuration::from_millis(50),
            group_commit_window: SimDuration::ZERO,
            group_commit_max: 64,
            dump_page_size: 64,
            audit_rotate_every: 4096,
            trail_purge_interval: SimDuration::ZERO,
            archive_retain: 2,
            snapshot_undo_capacity: 4096,
        }
    }
}

impl TmfNodeConfig {
    /// Start building a validated configuration from the defaults.
    pub fn builder() -> TmfNodeConfigBuilder {
        TmfNodeConfigBuilder {
            cfg: TmfNodeConfig::default(),
        }
    }

    pub fn group_commit_window(&self) -> SimDuration {
        self.group_commit_window
    }

    pub fn group_commit_max(&self) -> usize {
        self.group_commit_max
    }

    pub fn dump_page_size(&self) -> usize {
        self.dump_page_size
    }

    pub fn audit_rotate_every(&self) -> usize {
        self.audit_rotate_every
    }

    pub fn audit_partitions(&self) -> usize {
        self.audit_partitions
    }

    pub fn trail_purge_interval(&self) -> SimDuration {
        self.trail_purge_interval
    }

    pub fn archive_retain(&self) -> u64 {
        self.archive_retain
    }

    pub fn snapshot_undo_capacity(&self) -> usize {
        self.snapshot_undo_capacity
    }
}

/// A rejected [`TmfNodeConfigBuilder::build`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// A node needs at least one AUDITPROCESS pair.
    NoAuditProcesses,
    /// A timeout or retry interval was zero (named field).
    ZeroDuration(&'static str),
    /// Critical-response messages need at least one attempt.
    NoCriticalRetries,
    /// `group_commit_max` must admit at least one record per boxcar.
    ZeroGroupCommitMax,
    /// The window exceeds one second — longer than any commit timeout,
    /// so every boxcar would expire its requesters instead of forcing.
    WindowTooLong,
    /// An ONLINEDUMP page must copy at least one record per disc access.
    ZeroDumpPageSize,
    /// A trail file must hold at least one record before rotating.
    ZeroAuditRotate,
    /// An audit trail needs at least one partition.
    ZeroAuditPartitions,
    /// At least the latest archive generation must be retained, or every
    /// completed dump would immediately delete its own archive.
    ZeroArchiveRetain,
    /// The snapshot before-image ring must hold at least one image.
    ZeroSnapshotUndo,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NoAuditProcesses => write!(f, "audit_processes must be >= 1"),
            ConfigError::ZeroDuration(field) => write!(f, "{field} must be nonzero"),
            ConfigError::NoCriticalRetries => write!(f, "critical_retries must be >= 1"),
            ConfigError::ZeroGroupCommitMax => write!(f, "group_commit_max must be >= 1"),
            ConfigError::WindowTooLong => {
                write!(f, "group_commit_window must be at most one second")
            }
            ConfigError::ZeroDumpPageSize => write!(f, "dump_page_size must be >= 1"),
            ConfigError::ZeroAuditRotate => write!(f, "audit_rotate_every must be >= 1"),
            ConfigError::ZeroAuditPartitions => write!(f, "audit_partitions must be >= 1"),
            ConfigError::ZeroArchiveRetain => write!(f, "archive_retain must be >= 1"),
            ConfigError::ZeroSnapshotUndo => write!(f, "snapshot_undo_capacity must be >= 1"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Builder for [`TmfNodeConfig`]; every setter is chainable and
/// [`TmfNodeConfigBuilder::build`] validates the combination.
#[derive(Clone, Debug)]
pub struct TmfNodeConfigBuilder {
    cfg: TmfNodeConfig,
}

impl TmfNodeConfigBuilder {
    pub fn recovery_mode(mut self, mode: RecoveryMode) -> Self {
        self.cfg.recovery_mode = mode;
        self
    }

    pub fn audit_service(mut self, service: impl Into<String>) -> Self {
        self.cfg.audit_service = service.into();
        self
    }

    pub fn audit_processes(mut self, count: usize) -> Self {
        self.cfg.audit_processes = count;
        self
    }

    pub fn critical_timeout(mut self, timeout: SimDuration) -> Self {
        self.cfg.critical_timeout = timeout;
        self
    }

    pub fn critical_retries(mut self, retries: u32) -> Self {
        self.cfg.critical_retries = retries;
        self
    }

    pub fn safe_retry(mut self, interval: SimDuration) -> Self {
        self.cfg.safe_retry = interval;
        self
    }

    pub fn flush_interval(mut self, interval: SimDuration) -> Self {
        self.cfg.flush_interval = interval;
        self
    }

    pub fn group_commit_window(mut self, window: SimDuration) -> Self {
        self.cfg.group_commit_window = window;
        self
    }

    pub fn group_commit_max(mut self, max: usize) -> Self {
        self.cfg.group_commit_max = max;
        self
    }

    pub fn dump_page_size(mut self, size: usize) -> Self {
        self.cfg.dump_page_size = size;
        self
    }

    pub fn audit_rotate_every(mut self, records: usize) -> Self {
        self.cfg.audit_rotate_every = records;
        self
    }

    pub fn audit_partitions(mut self, partitions: usize) -> Self {
        self.cfg.audit_partitions = partitions;
        self
    }

    pub fn trail_purge_interval(mut self, interval: SimDuration) -> Self {
        self.cfg.trail_purge_interval = interval;
        self
    }

    pub fn archive_retain(mut self, generations: u64) -> Self {
        self.cfg.archive_retain = generations;
        self
    }

    pub fn snapshot_undo_capacity(mut self, capacity: usize) -> Self {
        self.cfg.snapshot_undo_capacity = capacity;
        self
    }

    pub fn build(self) -> Result<TmfNodeConfig, ConfigError> {
        let c = &self.cfg;
        if c.audit_processes < 1 {
            return Err(ConfigError::NoAuditProcesses);
        }
        if c.critical_timeout == SimDuration::ZERO {
            return Err(ConfigError::ZeroDuration("critical_timeout"));
        }
        if c.safe_retry == SimDuration::ZERO {
            return Err(ConfigError::ZeroDuration("safe_retry"));
        }
        if c.flush_interval == SimDuration::ZERO {
            return Err(ConfigError::ZeroDuration("flush_interval"));
        }
        if c.critical_retries < 1 {
            return Err(ConfigError::NoCriticalRetries);
        }
        if c.group_commit_max < 1 {
            return Err(ConfigError::ZeroGroupCommitMax);
        }
        if c.group_commit_window > SimDuration::from_secs(1) {
            return Err(ConfigError::WindowTooLong);
        }
        if c.dump_page_size < 1 {
            return Err(ConfigError::ZeroDumpPageSize);
        }
        if c.audit_rotate_every < 1 {
            return Err(ConfigError::ZeroAuditRotate);
        }
        if c.audit_partitions < 1 {
            return Err(ConfigError::ZeroAuditPartitions);
        }
        if c.archive_retain < 1 {
            return Err(ConfigError::ZeroArchiveRetain);
        }
        if c.snapshot_undo_capacity < 1 {
            return Err(ConfigError::ZeroSnapshotUndo);
        }
        Ok(self.cfg)
    }
}

/// Handles to a node's TMF processes.
pub struct NodeHandles {
    pub node: NodeId,
    pub tmp: PairHandle,
    pub audits: Vec<PairHandle>,
    pub backout: PairHandle,
    pub discs: Vec<PairHandle>,
    /// The node's `$DUMP` ONLINEDUMP pair.
    pub dump: PairHandle,
    /// Stable-storage keys of this node's audit trails, every partition
    /// included (for ROLLFORWARD).
    pub trail_keys: Vec<String>,
    /// Local volume name → the one trail (partition) holding its images.
    /// Per-partition purging makes whole-service trail scans unsound for
    /// per-volume recovery: a sibling partition may legitimately have
    /// purged past this volume's floor.
    pub trail_key_of: BTreeMap<String, String>,
}

/// Spawn the full TMF process set for `node`. The node must have at least
/// two CPUs; pairs are spread round-robin over the available processors.
pub fn spawn_tmf_node(
    world: &mut World,
    node: NodeId,
    catalog: &Catalog,
    cfg: TmfNodeConfig,
) -> NodeHandles {
    let cpus = world.cpu_count(node);
    assert!(cpus >= 2, "a node needs at least two processors");
    let pair_cpus = |i: u8| -> (u8, u8) {
        let p = i % cpus;
        let b = (i + 1) % cpus;
        (p, b)
    };

    // per-CPU transaction tables + operator
    for cpu in 0..cpus {
        world.spawn(node, cpu, Box::new(TxTableProcess::new()));
    }
    world.spawn(node, 0, Box::new(OperatorProcess::default()));

    // audit processes (one per simulated controller group) + backout
    let audit_count = cfg.audit_processes.max(1);
    let service_name = |i: usize| -> String {
        if audit_count == 1 {
            cfg.audit_service.clone()
        } else {
            format!("{}{}", cfg.audit_service, i)
        }
    };
    // Volumes share audit services round-robin; within each service they
    // are dealt round-robin again into trail partitions (the volume
    // groups of DESIGN.md §D12). Computed up front: the AUDITPROCESS
    // needs its volume→partition map at spawn time.
    let volumes: Vec<_> = catalog
        .all_volumes()
        .into_iter()
        .filter(|v| v.node == node)
        .collect();
    let partitions = cfg.audit_partitions.max(1);
    let mut partition_maps: Vec<BTreeMap<String, usize>> = vec![BTreeMap::new(); audit_count];
    let mut trail_key_of = BTreeMap::new();
    for (i, volume) in volumes.iter().enumerate() {
        let s = i % audit_count;
        let p = partition_maps[s].len() % partitions;
        partition_maps[s].insert(volume.volume.clone(), p);
        trail_key_of.insert(
            volume.volume.clone(),
            encompass_audit::trail::partition_trail_key(node, &service_name(s), p),
        );
    }

    let mut audits = Vec::new();
    let mut trail_keys = Vec::new();
    for (i, partition_of) in partition_maps.iter().enumerate() {
        let (ap, ab) = pair_cpus(i as u8);
        let svc = service_name(i);
        for p in 0..partitions {
            trail_keys.push(encompass_audit::trail::partition_trail_key(node, &svc, p));
        }
        audits.push(spawn_audit_process(
            world,
            node,
            ap,
            ab,
            AuditConfig {
                service: svc,
                rotate_every: cfg.audit_rotate_every,
                group_commit_window: cfg.group_commit_window,
                group_commit_max: cfg.group_commit_max,
                partitions,
                partition_of: partition_of.clone(),
            },
        ));
    }
    let (bp, bb) = pair_cpus(audit_count as u8);
    let backout = spawn_backout_process(world, node, bp, bb);

    // one DISCPROCESS pair per local volume
    let mut discs = Vec::new();
    let mut audit_service_of = BTreeMap::new();
    for (i, volume) in volumes.iter().enumerate() {
        let (dp, db) = pair_cpus(1 + audit_count as u8 + i as u8);
        let svc = service_name(i % audit_count);
        audit_service_of.insert(volume.volume.clone(), svc.clone());
        discs.push(spawn_disc_process(
            world,
            dp,
            db,
            volume.clone(),
            catalog.clone(),
            DiscConfig {
                recovery_mode: cfg.recovery_mode,
                audit_service: Some(svc),
                flush_interval: cfg.flush_interval,
                dump_page_size: cfg.dump_page_size,
                snapshot_undo_capacity: cfg.snapshot_undo_capacity,
                ..DiscConfig::default()
            },
        ));
    }

    // the TMP itself
    let (tp, tb) = pair_cpus(1 + audit_count as u8 + volumes.len() as u8);
    let tmp = spawn_tmp(
        world,
        node,
        tp,
        tb,
        TmpConfig {
            audit_service_of,
            backout_service: "$BACKOUT".into(),
            critical_timeout: cfg.critical_timeout,
            critical_retries: cfg.critical_retries,
            safe_retry: cfg.safe_retry,
            group_commit_window: cfg.group_commit_window,
            group_commit_max: cfg.group_commit_max,
            purge_interval: cfg.trail_purge_interval,
            ..TmpConfig::default()
        },
    );

    // the ONLINEDUMP pair, on the slot after the TMP's
    let (up, ub) = pair_cpus(2 + audit_count as u8 + volumes.len() as u8);
    let dump =
        encompass_audit::dump::spawn_dump_process(world, node, up, ub, cfg.archive_retain);

    NodeHandles {
        node,
        tmp,
        audits,
        backout,
        discs,
        dump,
        trail_keys,
        trail_key_of,
    }
}

/// One transaction's flight record, assembled after a run: the merged
/// event timeline plus (for committed transactions with a full
/// end-request → commit window) the latency attribution.
pub struct FlightReport {
    pub transid: FlightTransid,
    pub events: Vec<FlightEvent>,
    pub attribution: Option<CommitAttribution>,
}

/// Post-run flight-recorder pass: one [`FlightReport`] per transaction the
/// recorder saw, in transid order. Empty when the recorder was disabled
/// (enable with `SimConfig::flight_recording` before building the world).
pub fn flight_reports(world: &World) -> Vec<FlightReport> {
    world
        .flightrec()
        .timelines()
        .into_iter()
        .map(|(transid, events)| {
            let attribution = attribute_commit(&events);
            FlightReport {
                transid,
                events,
                attribution,
            }
        })
        .collect()
}

/// Spawn TMF on every node the catalog references (nodes must already
/// exist in the world, fully linked by the caller).
pub fn spawn_tmf_network(
    world: &mut World,
    catalog: &Catalog,
    cfg: TmfNodeConfig,
) -> Vec<NodeHandles> {
    let mut nodes: Vec<NodeId> = catalog.all_volumes().into_iter().map(|v| v.node).collect();
    nodes.sort();
    nodes.dedup();
    nodes
        .into_iter()
        .map(|n| spawn_tmf_node(world, n, catalog, cfg.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_valid() {
        let cfg = TmfNodeConfig::builder().build().expect("defaults valid");
        assert_eq!(cfg.group_commit_window(), SimDuration::ZERO);
        assert_eq!(cfg.group_commit_max(), 64);
    }

    #[test]
    fn builder_rejects_bad_knobs() {
        assert_eq!(
            TmfNodeConfig::builder().audit_processes(0).build().unwrap_err(),
            ConfigError::NoAuditProcesses
        );
        assert_eq!(
            TmfNodeConfig::builder()
                .critical_timeout(SimDuration::ZERO)
                .build()
                .unwrap_err(),
            ConfigError::ZeroDuration("critical_timeout")
        );
        assert_eq!(
            TmfNodeConfig::builder().group_commit_max(0).build().unwrap_err(),
            ConfigError::ZeroGroupCommitMax
        );
        assert_eq!(
            TmfNodeConfig::builder()
                .group_commit_window(SimDuration::from_secs(2))
                .build()
                .unwrap_err(),
            ConfigError::WindowTooLong
        );
    }

    #[test]
    fn builder_accepts_group_commit() {
        let cfg = TmfNodeConfig::builder()
            .group_commit_window(SimDuration::from_millis(2))
            .group_commit_max(16)
            .build()
            .expect("valid");
        assert_eq!(cfg.group_commit_window(), SimDuration::from_millis(2));
        assert_eq!(cfg.group_commit_max(), 16);
    }
}
