//! Exhaustive-ish protocol sweeps: inject a partition at every point of a
//! distributed transaction's lifetime (millisecond granularity) and assert
//! the paper's safety property — "the decision to commit or abort a
//! transaction is uniform across all nodes, even in the event of loss of
//! communications between participating nodes".

use bytes::Bytes;
use encompass_tmf::audit::monitor::MonitorTrail;
use encompass_tmf::encompass::app::AppBuilder;
use encompass_tmf::sim::{Fault, NodeId, SimDuration, SimTime};
use encompass_tmf::storage::media::{media_key, VolumeMedia};
use encompass_tmf::storage::types::{FileDef, VolumeRef};
use encompass_tmf::storage::Catalog;
use encompass_tmf::tmf::session::{DbOp, SessionEvent, TmfSession};
use encompass_tmf::tmf::state::AbortReason;
use encompass_tmf::sim::{Ctx, Payload, Pid, Process, TimerId};
use std::cell::RefCell;
use std::rc::Rc;

/// Drives one distributed transaction: insert at node 0, insert at node 1,
/// then END. Records the final outcome string.
struct OneTxn {
    session: TmfSession,
    step: u8,
    outcome: Rc<RefCell<Option<&'static str>>>,
}

impl Process for OneTxn {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.step = 1;
        self.session
            .begin(ctx, encompass_tmf::tmf::session::SessionOptions::default(), 0);
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, _src: Pid, payload: Payload) {
        let Ok(Some(ev)) = self.session.accept(ctx, payload) else {
            return;
        };
        self.advance(ctx, ev);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerId, tag: u64) {
        if let Some(ev) = self.session.on_timer(ctx, tag) {
            self.advance(ctx, ev);
        }
    }
}

impl OneTxn {
    fn advance(&mut self, ctx: &mut Ctx<'_>, ev: SessionEvent) {
        match (self.step, ev) {
            (1, SessionEvent::Began { .. }) => {
                self.step = 2;
                let _ = self.session.op(
                    ctx,
                    DbOp::Insert {
                        file: "f0".into(),
                        key: Bytes::from_static(b"key"),
                        value: Bytes::from_static(b"v"),
                    },
                    0,
                );
            }
            (2, SessionEvent::OpDone { .. }) => {
                self.step = 3;
                let _ = self.session.op(
                    ctx,
                    DbOp::Insert {
                        file: "f1".into(),
                        key: Bytes::from_static(b"key"),
                        value: Bytes::from_static(b"v"),
                    },
                    0,
                );
            }
            (3, SessionEvent::OpDone { .. }) => {
                self.step = 4;
                self.session.end(ctx, 0);
            }
            (4, SessionEvent::Committed { .. }) => {
                *self.outcome.borrow_mut() = Some("committed");
            }
            (_, SessionEvent::Aborted { .. }) => {
                *self.outcome.borrow_mut() = Some("aborted");
            }
            (_, SessionEvent::Failed { .. }) => {
                // a step could not run (partition mid-flight): back out
                if self.session.transid().is_some() && !self.session.busy() {
                    self.step = 9;
                    self.session.abort(ctx, AbortReason::NetworkPartition, 0);
                } else {
                    *self.outcome.borrow_mut() = Some("failed");
                }
            }
            _ => {}
        }
    }
}

/// Run the two-node scenario with a partition injected at `cut_us`, healed
/// 1.5s later. Returns (driver outcome, committed-at-home,
/// value-visible-at-node1-after-heal).
fn run_with_cut(cut_us: u64) -> (&'static str, Option<bool>, bool) {
    let mut catalog = Catalog::new();
    catalog.add(FileDef::key_sequenced("f0", VolumeRef::new(NodeId(0), "$D0")));
    catalog.add(FileDef::key_sequenced("f1", VolumeRef::new(NodeId(1), "$D1")));
    let mut app = AppBuilder::new()
        .node(4)
        .node(4)
        .mesh(SimDuration::from_millis(2))
        .build(catalog);
    let n0 = app.nodes[0];
    let n1 = app.nodes[1];
    let outcome = Rc::new(RefCell::new(None));
    let session = TmfSession::new(app.catalog.clone(), 0);
    app.world.spawn(
        n0,
        0,
        Box::new(OneTxn {
            session,
            step: 0,
            outcome: outcome.clone(),
        }),
    );
    app.world
        .schedule_fault(SimTime::from_micros(cut_us), Fault::Partition(vec![n1]));
    app.world.schedule_fault(
        SimTime::from_micros(cut_us + 1_500_000),
        Fault::HealAllLinks,
    );
    // long drain: heals, safe-delivery retries, backouts, flushes
    app.world.run_for(SimDuration::from_secs(30));

    let driver_outcome = outcome.borrow().unwrap_or("in-doubt");
    // the transaction this run created is always T0.0.1
    let transid = encompass_tmf::tmf::Transid {
        home_node: n0,
        cpu: 0,
        seq: 1,
    };
    let committed = MonitorTrail::of(app.world.stable_mut(), n0).outcome(transid);
    let visible_n1 = app
        .world
        .stable()
        .get::<VolumeMedia>(&media_key(n1, "$D1"))
        .and_then(|m| m.file("f1"))
        .and_then(|f| f.read(b"key"))
        .is_some();
    (driver_outcome, committed, visible_n1)
}

#[test]
fn decision_is_uniform_for_every_partition_point() {
    // sweep the cut through the whole transaction lifetime: the first
    // ~60ms covers begin + both inserts + commit (disc access is 25ms);
    // sample densely there and sparsely after
    let mut cuts: Vec<u64> = (0..30).map(|i| 2_000 + i * 4_000).collect();
    cuts.extend([150_000, 250_000, 500_000]);
    for cut in cuts {
        let (driver, committed, visible) = run_with_cut(cut);
        match committed {
            Some(true) => {
                assert_eq!(
                    driver, "committed",
                    "cut at {cut}us: commit record exists, driver must see commit"
                );
                assert!(
                    visible,
                    "cut at {cut}us: committed transaction's write visible on node 1 after heal"
                );
            }
            Some(false) | None => {
                assert_ne!(
                    driver, "committed",
                    "cut at {cut}us: no commit record, driver must not see commit"
                );
                assert!(
                    !visible,
                    "cut at {cut}us: aborted transaction left data on node 1"
                );
            }
        }
    }
}

#[test]
fn no_partition_always_commits() {
    // sanity: the same scenario without a cut commits and replicates
    let (driver, committed, visible) = run_with_cut(60_000_000);
    assert_eq!(driver, "committed");
    assert_eq!(committed, Some(true));
    assert!(visible);
}
