//! Additional workspace-level scenarios: ROLLFORWARD's negotiation with a
//! *remote* home node, audit-trail purging against an archive watermark,
//! the TMF utility (disposition query / manual override), and a run with
//! message jitter enabled (shakes out accidental ordering assumptions).

use bytes::Bytes;
use encompass_tmf::audit::monitor::MonitorTrail;
use encompass_tmf::audit::rollforward::rollforward_volume;
use encompass_tmf::audit::trail::{trail_key, TrailMedia};
use encompass_tmf::encompass::app::{launch_bank_app, AppBuilder, BankAppParams};
use encompass_tmf::encompass::workload::total_balance;
use encompass_tmf::sim::{
    CpuId, Fault, NodeId, SimConfig, SimDuration,
};
use encompass_tmf::storage::media::{media_key, VolumeMedia};
use encompass_tmf::storage::types::{FileDef, VolumeRef};
use encompass_tmf::storage::Catalog;
use guardian::Target;

mod driver {
    //! A minimal copy of the scripted transaction driver (tests cannot
    //! import each other's modules).
    use bytes::Bytes;
    use encompass_tmf::sim::{Ctx, NodeId, Payload, Pid, Process, TimerId, World};
    use encompass_tmf::storage::discprocess::DiscReply;
    use encompass_tmf::storage::Catalog;
    use std::cell::RefCell;
    use std::rc::Rc;
    use tmf::session::{DbOp, SessionEvent, SessionOptions, TmfSession};
    use tmf::state::AbortReason;

    #[derive(Clone)]
    pub enum Step {
        Begin,
        #[allow(dead_code)]
        Read(String, Bytes),
        Insert(String, Bytes, Bytes),
        End,
        #[allow(dead_code)]
        Abort,
    }

    pub type Log = Rc<RefCell<Vec<String>>>;

    pub struct TxnDriver {
        session: TmfSession,
        script: Vec<Step>,
        next: usize,
        log: Log,
    }

    impl Process for TxnDriver {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            self.kick(ctx);
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _src: Pid, payload: Payload) {
            if let Ok(Some(ev)) = self.session.accept(ctx, payload) {
                self.on_event(ctx, ev);
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerId, tag: u64) {
            if let Some(ev) = self.session.on_timer(ctx, tag) {
                self.on_event(ctx, ev);
            }
        }
    }

    impl TxnDriver {
        fn kick(&mut self, ctx: &mut Ctx<'_>) {
            if self.next >= self.script.len() {
                return;
            }
            let step = self.script[self.next].clone();
            self.next += 1;
            match step {
                Step::Begin => self.session.begin(ctx, SessionOptions::default(), 0),
                Step::Read(f, k) => {
                    let _ = self.session.op(ctx, DbOp::Read { file: f, key: k }, 0);
                }
                Step::Insert(f, k, v) => {
                    let _ = self
                        .session
                        .op(ctx, DbOp::Insert { file: f, key: k, value: v }, 0);
                }
                Step::End => self.session.end(ctx, 0),
                Step::Abort => self.session.abort(ctx, AbortReason::Voluntary, 0),
            }
        }
        fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: SessionEvent) {
            let entry = match &ev {
                SessionEvent::Began { transid, .. } => format!("began:{transid}"),
                SessionEvent::OpDone { reply, .. } => match reply {
                    DiscReply::Value(Some(v)) => format!("value:{}", String::from_utf8_lossy(v)),
                    DiscReply::Value(None) => "value:<none>".into(),
                    DiscReply::Ok => "ok".into(),
                    other => format!("{other:?}"),
                },
                SessionEvent::Committed { .. } => "committed".into(),
                SessionEvent::Aborted { .. } => "aborted".into(),
                SessionEvent::Failed { .. } => "failed".into(),
            };
            self.log.borrow_mut().push(entry);
            self.kick(ctx);
        }
    }

    pub fn drive(
        world: &mut World,
        node: NodeId,
        cpu: u8,
        catalog: Catalog,
        script: Vec<Step>,
    ) -> Log {
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        world.spawn(
            node,
            cpu,
            Box::new(TxnDriver {
                session: TmfSession::new(catalog, 0),
                script,
                next: 0,
                log: log.clone(),
            }),
        );
        log
    }
}

use driver::{drive, Step};

fn b(s: &str) -> Bytes {
    Bytes::copy_from_slice(s.as_bytes())
}

/// ROLLFORWARD of a non-home volume must consult the *home node's* monitor
/// trail — the paper's "negotiates with other nodes of the network".
#[test]
fn rollforward_negotiates_with_remote_home_node() {
    let mut catalog = Catalog::new();
    catalog.add(FileDef::key_sequenced("f0", VolumeRef::new(NodeId(0), "$D0")));
    catalog.add(FileDef::key_sequenced("f1", VolumeRef::new(NodeId(1), "$D1")));
    let mut app = AppBuilder::new()
        .node(4)
        .node(4)
        .mesh(SimDuration::from_millis(2))
        .build(catalog);
    let (n0, n1) = (app.nodes[0], app.nodes[1]);

    // archive node 1's volume up front
    let _ = encompass_tmf::storage::testkit::run_script(
        &mut app.world,
        n1,
        0,
        Target::Named(n1, "$D1".into()),
        vec![encompass_tmf::storage::discprocess::DiscRequest::Archive { generation: 1 }],
    );
    app.world.run_for(SimDuration::from_millis(200));

    // a distributed transaction homed at node 0 writes node 1's volume
    let log = drive(
        &mut app.world,
        n0,
        0,
        app.catalog.clone(),
        vec![
            Step::Begin,
            Step::Insert("f0".into(), b("k"), b("v0")),
            Step::Insert("f1".into(), b("k"), b("v1")),
            Step::End,
        ],
    );
    app.world.run_for(SimDuration::from_secs(10));
    assert_eq!(log.borrow().last().unwrap(), "committed");
    // the commit record lives at the HOME node only if node 1 never saw
    // phase 2 — normally both have it; verify home has it
    let transid = encompass_tmf::tmf::Transid {
        home_node: n0,
        cpu: 0,
        seq: 1,
    };
    assert_eq!(
        MonitorTrail::of(app.world.stable_mut(), n0).outcome(transid),
        Some(true)
    );

    // total failure of node 1's volume
    app.world.inject(Fault::KillCpu(n1, CpuId(2)));
    app.world.inject(Fault::KillCpu(n1, CpuId(3)));
    app.world.run_for(SimDuration::from_millis(100));
    {
        let media = app
            .world
            .stable_mut()
            .get_mut::<VolumeMedia>(&media_key(n1, "$D1"))
            .unwrap();
        media.fail_drive(0);
        media.fail_drive(1);
        media.revive_drive(0);
        media.revive_drive(1);
        // wipe node 1's own monitor trail to force the negotiation to go
        // to the remote home node (it would normally have a phase-2 copy)
        assert!(!media.available());
    }
    app.world.stable_mut().remove(
        &encompass_tmf::audit::monitor::monitor_key(n1),
    );

    let report = rollforward_volume(
        &mut app.world,
        &VolumeRef::new(n1, "$D1"),
        &[trail_key(n1, "$AUDIT")],
        1,
    );
    assert!(report.redone >= 1, "{report:?}");
    let media = app
        .world
        .stable()
        .get::<VolumeMedia>(&media_key(n1, "$D1"))
        .unwrap();
    assert_eq!(
        media.file("f1").and_then(|f| f.read(b"k")),
        Some(b("v1")),
        "the committed write survived via the remote home node's commit record"
    );
}

/// Trail files wholly below an archive watermark can be purged; recovery
/// from that archive still works.
#[test]
fn trail_purge_respects_archive_watermark() {
    let mut app = launch_bank_app(BankAppParams {
        accounts: 100,
        terminals_per_node: 3,
        transactions_per_terminal: 10,
        think: SimDuration::from_millis(1),
        ..BankAppParams::default()
    });
    let n = app.nodes[0];
    // run half the workload, then archive (watermark captures progress)
    app.world.run_for(SimDuration::from_millis(700));
    let _ = encompass_tmf::storage::testkit::run_script(
        &mut app.world,
        n,
        0,
        Target::Named(n, "$BANK".into()),
        vec![encompass_tmf::storage::discprocess::DiscRequest::Archive { generation: 2 }],
    );
    app.world.run_for(SimDuration::from_secs(120));
    assert_eq!(app.world.metrics().get("tcp.terminals_finished"), 3);
    app.world.run_for(SimDuration::from_secs(5));
    let pre_total = total_balance(&mut app.world, &app.catalog, "accounts");

    // purge trail files below the watermark ("creation and purging is
    // managed by TMF"; here the operator drives it)
    let watermark = app
        .world
        .stable()
        .get::<encompass_tmf::storage::media::ArchiveImage>(
            &encompass_tmf::storage::media::archive_key(&VolumeRef::new(n, "$BANK"), 2),
        )
        .expect("archive present")
        .audit_watermark;
    let tk = trail_key(n, "$AUDIT");
    {
        let trail = app.world.stable_mut().get_mut::<TrailMedia>(&tk).unwrap();
        let before = trail.len();
        trail.purge_below(watermark);
        assert!(trail.len() <= before);
    }

    // crash + recover from generation 2: still exact
    app.world.inject(Fault::KillCpu(n, CpuId(2)));
    app.world.inject(Fault::KillCpu(n, CpuId(3)));
    app.world.run_for(SimDuration::from_millis(100));
    {
        let media = app
            .world
            .stable_mut()
            .get_mut::<VolumeMedia>(&media_key(n, "$BANK"))
            .unwrap();
        media.fail_drive(0);
        media.fail_drive(1);
        media.revive_drive(0);
        media.revive_drive(1);
    }
    let _ = rollforward_volume(&mut app.world, &VolumeRef::new(n, "$BANK"), &[tk], 2);
    let post_total = total_balance(&mut app.world, &app.catalog, "accounts");
    assert_eq!(post_total, pre_total, "recovery exact despite the purge");
}

/// The TMF utility: query a completed transaction's disposition.
#[test]
fn disposition_query_after_completion() {
    use encompass_tmf::tmf::tmp::{TmpMsg, TmpReply};
    use encompass_tmf::tmf::TxState;
    use encompass_tmf::sim::{Ctx, Payload, Pid, Process, TimerId};
    use guardian::Rpc;
    use std::cell::RefCell;
    use std::rc::Rc;

    let mut catalog = Catalog::new();
    catalog.add(FileDef::key_sequenced("f0", VolumeRef::new(NodeId(0), "$D0")));
    let mut app = AppBuilder::new().node(4).build(catalog);
    let n0 = app.nodes[0];
    let log = drive(
        &mut app.world,
        n0,
        0,
        app.catalog.clone(),
        vec![Step::Begin, Step::Insert("f0".into(), b("k"), b("v")), Step::End],
    );
    app.world.run_for(SimDuration::from_secs(5));
    assert_eq!(log.borrow().last().unwrap(), "committed");

    struct Query {
        node: NodeId,
        rpc: Rpc<TmpMsg, TmpReply>,
        got: Rc<RefCell<Option<TmpReply>>>,
    }
    impl Process for Query {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let transid = encompass_tmf::tmf::Transid {
                home_node: self.node,
                cpu: 0,
                seq: 1,
            };
            self.rpc.call_persistent(
                ctx,
                Target::Named(self.node, "$TMP".into()),
                TmpMsg::QueryDisposition { transid },
                SimDuration::from_millis(100),
                0,
            );
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _src: Pid, payload: Payload) {
            if let Ok(c) = self.rpc.accept(ctx, payload) {
                *self.got.borrow_mut() = Some(c.body);
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerId, tag: u64) {
            let _ = self.rpc.on_timer(ctx, tag);
        }
    }
    let got = Rc::new(RefCell::new(None));
    app.world.spawn(
        n0,
        1,
        Box::new(Query {
            node: n0,
            rpc: Rpc::new(60),
            got: got.clone(),
        }),
    );
    app.world.run_for(SimDuration::from_secs(2));
    assert_eq!(
        *got.borrow(),
        Some(TmpReply::Disposition {
            state: Some(TxState::Ended)
        }),
        "the utility reports the committed disposition from the monitor trail"
    );
}

/// The whole stack still behaves with randomized message jitter — no code
/// path silently depends on exact message ordering beyond what the
/// protocols guarantee.
#[test]
fn bank_workload_correct_under_message_jitter() {
    // every message delivery gets up to 200us of random (seeded) jitter,
    // plus a CPU failure/reload mid-run — ordering assumptions beyond the
    // protocols' own guarantees would break here
    let accounts = 150u64;
    let mut sim = SimConfig::with_seed(99);
    sim.jitter = SimDuration::from_micros(200);
    let mut app = launch_bank_app(BankAppParams {
        accounts,
        terminals_per_node: 4,
        transactions_per_terminal: 10,
        think: SimDuration::from_millis(2),
        sim,
        ..BankAppParams::default()
    });
    let n = app.nodes[0];
    app.world.schedule_fault(
        encompass_tmf::sim::SimTime::from_micros(333_333),
        Fault::KillCpu(n, CpuId(1)),
    );
    app.world.schedule_fault(
        encompass_tmf::sim::SimTime::from_micros(777_777),
        Fault::RestoreCpu(n, CpuId(1)),
    );
    app.world.run_for(SimDuration::from_secs(240));
    assert_eq!(app.world.metrics().get("tcp.terminals_finished"), 4);
    let final_total = total_balance(&mut app.world, &app.catalog, "accounts");
    assert!(final_total < accounts as i64 * 1000);
}
