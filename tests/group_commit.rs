//! Group-commit configuration properties over the full bank application:
//! window = 0 must take the legacy immediate-force path byte-for-byte
//! (identical trace hash to the default configuration), and a nonzero
//! window must change only physical I/O, never transaction outcomes.

use encompass_tmf::prelude::*;

struct BankRun {
    trace_hash: u64,
    commits: u64,
    monitor_forces: u64,
    audit_forces: u64,
}

fn run_bank(tmf: TmfNodeConfig) -> BankRun {
    let terminals = 4usize;
    let txns = 10u64;
    let mut app = launch_bank_app(BankAppParams {
        terminals_per_node: terminals,
        transactions_per_terminal: txns,
        accounts: 200,
        think: SimDuration::from_micros(200),
        tmf,
        ..BankAppParams::default()
    });
    let mut elapsed = 0u64;
    while app.world.metrics().get("tcp.terminals_finished") < terminals as u64
        && elapsed < 120_000
    {
        app.world.run_for(SimDuration::from_millis(100));
        elapsed += 100;
    }
    app.world.run_for(SimDuration::from_secs(5));
    let m = app.world.metrics();
    BankRun {
        trace_hash: app.world.trace_hash(),
        commits: m.get("tmf.commits"),
        monitor_forces: m.get("tmf.monitor_forces"),
        audit_forces: m.get("audit.forces"),
    }
}

#[test]
fn window_zero_is_trace_identical_to_default() {
    let default_run = run_bank(TmfNodeConfig::default());
    let explicit_zero = TmfNodeConfig::builder()
        .group_commit_window(SimDuration::ZERO)
        .group_commit_max(16)
        .build()
        .expect("valid tmf config");
    let zero_run = run_bank(explicit_zero);
    assert_eq!(default_run.commits, 40);
    assert_eq!(default_run.commits, zero_run.commits);
    assert_eq!(
        default_run.trace_hash, zero_run.trace_hash,
        "window = 0 must preserve the pre-boxcarring execution exactly \
         (group_commit_max is irrelevant when the window is closed)"
    );
}

#[test]
fn open_window_changes_physical_io_but_not_outcomes() {
    let baseline = run_bank(TmfNodeConfig::default());
    let batched = TmfNodeConfig::builder()
        .group_commit_window(SimDuration::from_millis(2))
        .build()
        .expect("valid tmf config");
    let batched_run = run_bank(batched);
    // every transaction still commits, exactly once
    assert_eq!(baseline.commits, 40);
    assert_eq!(batched_run.commits, 40);
    // but the window amortizes the physical forces
    assert!(
        batched_run.monitor_forces < baseline.monitor_forces,
        "monitor forces: batched {} vs baseline {}",
        batched_run.monitor_forces,
        baseline.monitor_forces
    );
    assert!(
        batched_run.audit_forces <= baseline.audit_forces,
        "audit forces: batched {} vs baseline {}",
        batched_run.audit_forces,
        baseline.audit_forces
    );
}
