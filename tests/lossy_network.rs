//! Lossy-network tests: EXPAND's "automatic packet forwarding via an
//! end-to-end protocol which assures that data transmissions are reliably
//! received" is modeled by the `guardian` RPC retransmission. With real
//! message loss on every link, distributed transactions must still either
//! commit everywhere or abort everywhere, and the workload must complete.
//!
//! Also covers the multi-AUDITPROCESS configuration: two volumes on one
//! node, each with its own audit service and trail, recovered together.

use encompass_tmf::encompass::app::AppBuilder;
use encompass_tmf::sim::{NodeId, SimDuration};
use encompass_tmf::storage::types::{FileDef, VolumeRef};
use encompass_tmf::storage::Catalog;
use encompass_tmf::tmf::facility::TmfNodeConfig;

mod driver {
    use bytes::Bytes;
    use encompass_tmf::sim::{Ctx, NodeId, Payload, Pid, Process, TimerId, World};
    use encompass_tmf::storage::Catalog;
    use std::cell::RefCell;
    use std::rc::Rc;
    use tmf::session::{DbOp, SessionEvent, SessionOptions, TmfSession};
    use tmf::state::AbortReason;

    /// Runs `count` two-node transactions back to back, restarting on any
    /// failure, until all have committed.
    pub struct Repeater {
        session: TmfSession,
        pub count: u64,
        step: u8,
        seq: u64,
        pub committed: Rc<RefCell<u64>>,
    }

    impl Repeater {
        pub fn new(catalog: Catalog, count: u64, committed: Rc<RefCell<u64>>) -> Repeater {
            Repeater {
                session: TmfSession::new(catalog, 0),
                count,
                step: 0,
                seq: 0,
                committed,
            }
        }
        fn begin_next(&mut self, ctx: &mut Ctx<'_>) {
            if *self.committed.borrow() >= self.count {
                return;
            }
            self.step = 1;
            self.session.begin(ctx, SessionOptions::default(), 0);
        }
        fn handle(&mut self, ctx: &mut Ctx<'_>, ev: SessionEvent) {
            match (self.step, ev) {
                (1, SessionEvent::Began { .. }) => {
                    self.step = 2;
                    self.seq += 1;
                    let k = Bytes::from(format!("k{}", self.seq));
                    let _ = self.session.op(
                        ctx,
                        DbOp::Insert { file: "f0".into(), key: k, value: Bytes::from_static(b"v") },
                        0,
                    );
                }
                (2, SessionEvent::OpDone { reply, .. }) => {
                    if matches!(reply, encompass_tmf::storage::discprocess::DiscReply::Ok) {
                        self.step = 3;
                        let k = Bytes::from(format!("k{}", self.seq));
                        let _ = self.session.op(
                            ctx,
                            DbOp::Insert {
                                file: "f1".into(),
                                key: k,
                                value: Bytes::from_static(b"v"),
                            },
                            0,
                        );
                    } else {
                        self.bail(ctx);
                    }
                }
                (3, SessionEvent::OpDone { reply, .. }) => {
                    if matches!(reply, encompass_tmf::storage::discprocess::DiscReply::Ok) {
                        self.step = 4;
                        self.session.end(ctx, 0);
                    } else {
                        self.bail(ctx);
                    }
                }
                (4, SessionEvent::Committed { .. }) => {
                    *self.committed.borrow_mut() += 1;
                    self.begin_next(ctx);
                }
                (_, SessionEvent::Aborted { .. }) => self.begin_next(ctx),
                (_, SessionEvent::Failed { .. }) => self.bail(ctx),
                _ => {}
            }
        }
        fn bail(&mut self, ctx: &mut Ctx<'_>) {
            if self.session.transid().is_some() && !self.session.busy() {
                self.step = 9;
                self.session.abort(ctx, AbortReason::NetworkPartition, 0);
            } else {
                self.begin_next(ctx);
            }
        }
    }

    impl Process for Repeater {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            self.begin_next(ctx);
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _src: Pid, payload: Payload) {
            if let Ok(Some(ev)) = self.session.accept(ctx, payload) {
                self.handle(ctx, ev);
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerId, tag: u64) {
            if let Some(ev) = self.session.on_timer(ctx, tag) {
                self.handle(ctx, ev);
            }
        }
    }

    pub fn spawn(
        world: &mut World,
        node: NodeId,
        catalog: Catalog,
        count: u64,
    ) -> Rc<RefCell<u64>> {
        let committed = Rc::new(RefCell::new(0));
        world.spawn(
            node,
            0,
            Box::new(Repeater::new(catalog, count, committed.clone())),
        );
        committed
    }
}

#[test]
fn distributed_transactions_complete_over_a_lossy_link() {
    let mut catalog = Catalog::new();
    catalog.add(FileDef::key_sequenced("f0", VolumeRef::new(NodeId(0), "$D0")));
    catalog.add(FileDef::key_sequenced("f1", VolumeRef::new(NodeId(1), "$D1")));
    let mut app = AppBuilder::new()
        .node(4)
        .node(4)
        .link(0, 1, SimDuration::from_millis(2))
        .build(catalog);
    // 10% of all packets on the only link vanish
    app.world
        .set_link_loss(encompass_tmf::sim::LinkId(0), 0.10);

    let committed = driver::spawn(&mut app.world, app.nodes[0], app.catalog.clone(), 20);
    app.world.run_for(SimDuration::from_secs(600));
    assert_eq!(
        *committed.borrow(),
        20,
        "all distributed transactions eventually committed despite 10% loss \
         (retransmissions: {})",
        app.world.metrics().get("sim.msgs.lost")
    );
    assert!(
        app.world.metrics().get("sim.msgs.lost") > 0,
        "the link actually dropped packets"
    );
    // uniformity: every commit on the home monitor trail has its f1 write
    // present (flush drain first)
    app.world.run_for(SimDuration::from_secs(10));
    use encompass_tmf::storage::media::{media_key, VolumeMedia};
    let media = app
        .world
        .stable()
        .get::<VolumeMedia>(&media_key(app.nodes[1], "$D1"))
        .unwrap();
    assert_eq!(media.file("f1").map(|f| f.len()).unwrap_or(0), 20);
}

#[test]
fn multiple_audit_processes_share_the_load_and_recover_together() {
    use encompass_tmf::audit::rollforward::rollforward_volume;
    use encompass_tmf::sim::{CpuId, Fault};
    use encompass_tmf::storage::media::{media_key, VolumeMedia};
    use guardian::Target;

    let n0 = NodeId(0);
    let mut catalog = Catalog::new();
    catalog.add(FileDef::key_sequenced("fa", VolumeRef::new(n0, "$DA")));
    catalog.add(FileDef::key_sequenced("fb", VolumeRef::new(n0, "$DB")));
    let mut app = AppBuilder::new()
        .node(8)
        .tmf_config(
            TmfNodeConfig::builder()
                .audit_processes(2)
                .build()
                .expect("valid tmf config"),
        )
        .build(catalog);

    // archive both volumes, then run transactions touching both
    for vol in ["$DA", "$DB"] {
        let _ = encompass_tmf::storage::testkit::run_script(
            &mut app.world,
            n0,
            0,
            Target::Named(n0, vol.into()),
            vec![encompass_tmf::storage::discprocess::DiscRequest::Archive { generation: 1 }],
        );
    }
    app.world.run_for(SimDuration::from_millis(200));

    // run 10 transactions, each touching both volumes (and hence both
    // audit services)
    let committed = dual_driver::spawn(&mut app.world, n0, app.catalog.clone(), 10);
    app.world.run_for(SimDuration::from_secs(120));
    assert_eq!(*committed.borrow(), 10);
    // both trails carry records
    let trails = [
        encompass_tmf::audit::trail::trail_key(n0, "$AUDIT0"),
        encompass_tmf::audit::trail::trail_key(n0, "$AUDIT1"),
    ];
    for tk in &trails {
        let t = app
            .world
            .stable()
            .get::<encompass_tmf::audit::trail::TrailMedia>(tk)
            .expect("trail exists");
        assert!(!t.is_empty(), "{tk} carries audit records");
    }
    // total failure of volume $DA (its pair lives on CPUs 3,4)
    app.world.run_for(SimDuration::from_secs(5));
    app.world.inject(Fault::KillCpu(n0, CpuId(3)));
    app.world.inject(Fault::KillCpu(n0, CpuId(4)));
    app.world.run_for(SimDuration::from_millis(100));
    {
        let media = app
            .world
            .stable_mut()
            .get_mut::<VolumeMedia>(&media_key(n0, "$DA"))
            .unwrap();
        media.fail_drive(0);
        media.fail_drive(1);
        media.revive_drive(0);
        media.revive_drive(1);
    }
    let report = rollforward_volume(&mut app.world, &VolumeRef::new(n0, "$DA"), &trails, 1);
    assert!(report.redone >= 10, "{report:?}");
    let media = app
        .world
        .stable()
        .get::<VolumeMedia>(&media_key(n0, "$DA"))
        .unwrap();
    assert_eq!(media.file("fa").map(|f| f.len()).unwrap_or(0), 10);
}

mod dual_driver {
    use bytes::Bytes;
    use encompass_tmf::sim::{Ctx, NodeId, Payload, Pid, Process, TimerId, World};
    use encompass_tmf::storage::Catalog;
    use std::cell::RefCell;
    use std::rc::Rc;
    use tmf::session::{DbOp, SessionEvent, SessionOptions, TmfSession};

    pub struct Dual {
        session: TmfSession,
        count: u64,
        seq: u64,
        step: u8,
        committed: Rc<RefCell<u64>>,
    }

    impl Process for Dual {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            self.next(ctx);
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _src: Pid, payload: Payload) {
            if let Ok(Some(ev)) = self.session.accept(ctx, payload) {
                self.handle(ctx, ev);
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerId, tag: u64) {
            if let Some(ev) = self.session.on_timer(ctx, tag) {
                self.handle(ctx, ev);
            }
        }
    }

    impl Dual {
        fn next(&mut self, ctx: &mut Ctx<'_>) {
            if *self.committed.borrow() >= self.count {
                return;
            }
            self.step = 1;
            self.session.begin(ctx, SessionOptions::default(), 0);
        }
        fn handle(&mut self, ctx: &mut Ctx<'_>, ev: SessionEvent) {
            let k = Bytes::from(format!("k{}", self.seq));
            match (self.step, ev) {
                (1, SessionEvent::Began { .. }) => {
                    self.seq += 1;
                    self.step = 2;
                    let k = Bytes::from(format!("k{}", self.seq));
                    let _ = self.session.op(
                        ctx,
                        DbOp::Insert { file: "fa".into(), key: k, value: Bytes::from_static(b"v") },
                        0,
                    );
                }
                (2, SessionEvent::OpDone { .. }) => {
                    self.step = 3;
                    let _ = self.session.op(
                        ctx,
                        DbOp::Insert { file: "fb".into(), key: k, value: Bytes::from_static(b"v") },
                        0,
                    );
                }
                (3, SessionEvent::OpDone { .. }) => {
                    self.step = 4;
                    self.session.end(ctx, 0);
                }
                (4, SessionEvent::Committed { .. }) => {
                    *self.committed.borrow_mut() += 1;
                    self.next(ctx);
                }
                _ => {}
            }
        }
    }

    pub fn spawn(
        world: &mut World,
        node: NodeId,
        catalog: Catalog,
        count: u64,
    ) -> Rc<RefCell<u64>> {
        let committed = Rc::new(RefCell::new(0));
        world.spawn(
            node,
            0,
            Box::new(Dual {
                session: TmfSession::new(catalog, 0),
                count,
                seq: 0,
                step: 0,
                committed: committed.clone(),
            }),
        );
        committed
    }
}
