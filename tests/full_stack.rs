//! Workspace-level integration tests: the full stack (simulated hardware →
//! GUARDIAN → storage → audit → TMF → ENCOMPASS application) exercised
//! end-to-end, with the paper's headline guarantees asserted as
//! invariants.
//!
//! The key invariant used throughout: the bank workload debits accounts
//! and appends one history record per debit *in the same transaction*, so
//! **initial_total − final_total must equal the sum of the amounts in the
//! history file** — atomicity made measurable. Any torn transaction
//! (debit without history, history without debit, double-applied retry)
//! breaks the equation.

use bytes::Bytes;
use encompass_tmf::encompass::app::{launch_bank_app, BankAppParams};
use encompass_tmf::encompass::workload::total_balance;
use encompass_tmf::sim::{CpuId, Fault, SimDuration};
use encompass_tmf::storage::media::{media_key, VolumeMedia};

/// Sum of debit amounts recorded in the committed history file.
fn history_total(app: &mut encompass_tmf::encompass::app::AppHandles) -> i64 {
    let node = app.nodes[0];
    let media = app
        .world
        .stable()
        .get::<VolumeMedia>(&media_key(node, "$BANK"))
        .expect("bank media");
    let Some(hist) = media.file("history") else {
        return 0;
    };
    hist.scan(&[], None, usize::MAX)
        .into_iter()
        .map(|(_, v)| {
            let s = String::from_utf8_lossy(&v);
            s.rsplit(':')
                .next()
                .and_then(|a| a.parse::<i64>().ok())
                .unwrap_or(0)
        })
        .sum()
}

/// Run a bank app to completion (+ flush drain) and assert conservation.
fn assert_conservation(mut app: encompass_tmf::encompass::app::AppHandles, accounts: u64) {
    // drain: in-flight work, backouts, safe-delivery retries, cache flushes
    app.world.run_for(SimDuration::from_secs(240));
    let final_total = total_balance(&mut app.world, &app.catalog, "accounts");
    let debited = history_total(&mut app);
    let initial_total = accounts as i64 * 1000;
    assert_eq!(
        initial_total - final_total,
        debited,
        "atomicity: balance delta must equal committed history \
         (initial={initial_total}, final={final_total}, history={debited})"
    );
}

#[test]
fn distributed_bank_conserves_money_across_nodes() {
    let accounts = 300u64;
    let mut app = launch_bank_app(BankAppParams {
        node_cpus: vec![4, 4], // accounts partitioned across two nodes
        accounts,
        terminals_per_node: 4,
        transactions_per_terminal: 12,
        think: SimDuration::from_millis(2),
        ..BankAppParams::default()
    });
    app.world.run_for(SimDuration::from_secs(120));
    assert_eq!(
        app.world.metrics().get("tcp.terminals_finished"),
        8,
        "all terminals on both nodes finished"
    );
    assert_eq!(app.world.metrics().get("tcp.commits"), 96);
    // cross-node transactions happened (node 1 terminals debit node 0
    // accounts and vice versa, and history lives on node 0)
    assert!(
        app.world.metrics().get("tmf.msgs.remote_begin") > 0,
        "remote transaction begins occurred"
    );
    assert_conservation(app, accounts);
}

#[test]
fn atomicity_holds_under_serial_cpu_failures() {
    // kill and reload each CPU in turn while the workload runs
    let accounts = 300u64;
    let mut app = launch_bank_app(BankAppParams {
        accounts,
        terminals_per_node: 6,
        transactions_per_terminal: 20,
        think: SimDuration::from_millis(2),
        ..BankAppParams::default()
    });
    let n = app.nodes[0];
    for cpu in [2u8, 0, 3, 1] {
        app.world.run_for(SimDuration::from_millis(700));
        app.world.inject(Fault::KillCpu(n, CpuId(cpu)));
        app.world.run_for(SimDuration::from_millis(1500));
        app.world.inject(Fault::RestoreCpu(n, CpuId(cpu)));
    }
    app.world.run_for(SimDuration::from_secs(240));
    assert_eq!(
        app.world.metrics().get("tcp.terminals_finished"),
        6,
        "workload completed despite four serial CPU failures"
    );
    assert_conservation(app, accounts);
}

#[test]
fn atomicity_holds_under_partitions_between_nodes() {
    let accounts = 200u64;
    let mut app = launch_bank_app(BankAppParams {
        node_cpus: vec![4, 4],
        accounts,
        terminals_per_node: 4,
        transactions_per_terminal: 12,
        think: SimDuration::from_millis(2),
        ..BankAppParams::default()
    });
    let n1 = app.nodes[1];
    // three partition episodes while cross-node transactions run
    for _ in 0..3 {
        app.world.run_for(SimDuration::from_millis(900));
        app.world.inject(Fault::Partition(vec![n1]));
        app.world.run_for(SimDuration::from_millis(1200));
        app.world.inject(Fault::HealAllLinks);
    }
    app.world.run_for(SimDuration::from_secs(300));
    assert_eq!(app.world.metrics().get("tcp.terminals_finished"), 8);
    assert_conservation(app, accounts);
}

#[test]
fn atomicity_property_random_fault_schedules() {
    // a lightweight hand-rolled property test: many seeds, each with a
    // pseudo-random schedule of CPU kills/reloads and partitions; the
    // conservation invariant must hold for every one
    use rand::{Rng, SeedableRng};
    for seed in 0..6u64 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xFA17 + seed);
        let accounts = 150u64;
        let two_nodes = rng.random_bool(0.5);
        let mut app = launch_bank_app(BankAppParams {
            node_cpus: if two_nodes { vec![4, 4] } else { vec![4] },
            accounts,
            terminals_per_node: 4,
            transactions_per_terminal: 8,
            think: SimDuration::from_millis(2),
            seed,
            ..BankAppParams::default()
        });
        let faults = rng.random_range(1..4);
        for _ in 0..faults {
            app.world
                .run_for(SimDuration::from_millis(rng.random_range(200..1500)));
            if two_nodes && rng.random_bool(0.4) {
                let n1 = app.nodes[1];
                app.world.inject(Fault::Partition(vec![n1]));
                app.world
                    .run_for(SimDuration::from_millis(rng.random_range(300..1500)));
                app.world.inject(Fault::HealAllLinks);
            } else {
                let node = app.nodes[rng.random_range(0..app.nodes.len())];
                let cpu = rng.random_range(0..4u8);
                app.world.inject(Fault::KillCpu(node, CpuId(cpu)));
                app.world
                    .run_for(SimDuration::from_millis(rng.random_range(300..1500)));
                app.world.inject(Fault::RestoreCpu(node, CpuId(cpu)));
            }
        }
        app.world.run_for(SimDuration::from_secs(240));
        let finished = app.world.metrics().get("tcp.terminals_finished");
        let terminals = if two_nodes { 8 } else { 4 };
        assert_eq!(finished, terminals, "seed {seed}: workload completed");
        assert_conservation(app, accounts);
    }
}

#[test]
fn deterministic_full_stack_replay() {
    fn run(seed: u64) -> u64 {
        let mut app = launch_bank_app(BankAppParams {
            accounts: 100,
            terminals_per_node: 4,
            transactions_per_terminal: 5,
            seed,
            ..BankAppParams::default()
        });
        let n = app.nodes[0];
        app.world
            .schedule_fault(encompass_tmf::sim::SimTime::from_micros(400_000), Fault::KillCpu(n, CpuId(2)));
        app.world.run_for(SimDuration::from_secs(30));
        app.world.trace_hash()
    }
    assert_eq!(run(7), run(7), "same seed, same trace");
    assert_ne!(run(7), run(8), "different seed, different trace");
}

#[test]
fn rollforward_restores_exact_committed_state_full_stack() {
    use encompass_tmf::audit::rollforward::rollforward_volume;
    use encompass_tmf::audit::trail::trail_key;
    use encompass_tmf::storage::types::VolumeRef;
    use guardian::Target;

    let accounts = 150u64;
    let mut app = launch_bank_app(BankAppParams {
        accounts,
        terminals_per_node: 4,
        transactions_per_terminal: 10,
        think: SimDuration::from_millis(1),
        ..BankAppParams::default()
    });
    let n = app.nodes[0];
    // archive while the workload is running (a fuzzy dump)
    let _ = encompass_tmf::storage::testkit::run_script(
        &mut app.world,
        n,
        0,
        Target::Named(n, "$BANK".into()),
        vec![encompass_tmf::storage::discprocess::DiscRequest::Archive { generation: 1 }],
    );
    app.world.run_for(SimDuration::from_secs(120));
    assert_eq!(app.world.metrics().get("tcp.terminals_finished"), 4);
    app.world.run_for(SimDuration::from_secs(10)); // flush drain
    let pre_total = total_balance(&mut app.world, &app.catalog, "accounts");
    let pre_history = history_total(&mut app);

    // total failure: both DISCPROCESS CPUs + both drives
    app.world.inject(Fault::KillCpu(n, CpuId(2)));
    app.world.inject(Fault::KillCpu(n, CpuId(3)));
    app.world.run_for(SimDuration::from_millis(100));
    {
        let media = app
            .world
            .stable_mut()
            .get_mut::<VolumeMedia>(&media_key(n, "$BANK"))
            .unwrap();
        media.fail_drive(0);
        media.fail_drive(1);
        media.revive_drive(0);
        media.revive_drive(1);
        assert!(!media.available(), "content lost");
    }
    let report = rollforward_volume(
        &mut app.world,
        &VolumeRef::new(n, "$BANK"),
        &[trail_key(n, "$AUDIT")],
        1,
    );
    assert!(report.redone > 0);
    let post_total = total_balance(&mut app.world, &app.catalog, "accounts");
    let post_history = history_total(&mut app);
    assert_eq!(post_total, pre_total, "balances recovered exactly");
    assert_eq!(post_history, pre_history, "history recovered exactly");
    assert_eq!(
        (accounts as i64 * 1000) - post_total,
        post_history,
        "and the recovered state is itself atomic"
    );
}

#[test]
fn umbrella_crate_reexports_work() {
    // the public API advertised in the README
    use encompass_tmf::sim::{SimConfig, World};
    let mut w = World::new(SimConfig::with_seed(1));
    let n = w.add_node(2);
    assert_eq!(w.cpu_count(n), 2);
    let _ = Bytes::from_static(b"smoke");
}
