//! Replica-convergence property of the manufacturing design: under an
//! arbitrary (seeded-random) schedule of partitions, once the network is
//! healed and the suspense monitors drain, every replica of every global
//! record equals its master copy — "global file copies converge to a
//! consistent state".

use encompass_tmf::encompass::app::{launch_mfg_app, read_replica, MfgAppParams};
use encompass_tmf::encompass::manufacturing::suspense;
use encompass_tmf::sim::{Fault, SimDuration};
use encompass_tmf::storage::media::{media_key, VolumeMedia};
use encompass_bench::driver::{MfgDriver, MfgTally};
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::rc::Rc;

#[test]
fn replicas_converge_under_random_partition_schedules() {
    for seed in 0..4u64 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0117 + seed);
        let mut app = launch_mfg_app(MfgAppParams {
            seed,
            ..MfgAppParams::default()
        });
        let n0 = app.nodes[0];
        // updates originate at node 0 (masters there)
        let tally = Rc::new(RefCell::new(MfgTally::default()));
        let updates = 16u64;
        app.world.spawn(
            n0,
            2,
            Box::new(MfgDriver::new(
                app.catalog.clone(),
                "master-update",
                n0,
                SimDuration::from_millis(400),
                updates,
                tally.clone(),
            )),
        );
        // random partition episodes of random non-master nodes
        let episodes = rng.random_range(1..4);
        for _ in 0..episodes {
            app.world
                .run_for(SimDuration::from_millis(rng.random_range(500..2500)));
            let victim = app.nodes[rng.random_range(1..app.nodes.len())];
            app.world.inject(Fault::Partition(vec![victim]));
            app.world
                .run_for(SimDuration::from_millis(rng.random_range(500..3000)));
            app.world.inject(Fault::HealAllLinks);
        }
        // drain: all updates issued, suspense monitors catch up, flushes land
        app.world.run_for(SimDuration::from_secs(120));
        assert_eq!(
            tally.borrow().committed,
            updates,
            "seed {seed}: master updates all committed (node autonomy)"
        );

        // invariant 1: every suspense file is empty
        for &n in &app.nodes.clone() {
            let backlog = app
                .world
                .stable()
                .get::<VolumeMedia>(&media_key(n, "$MFG"))
                .and_then(|m| m.file(&suspense(n)))
                .map(|f| f.len())
                .unwrap_or(0);
            assert_eq!(backlog, 0, "seed {seed}: suspense file on {n} drained");
        }
        // invariant 2: every replica equals the master copy
        for k in 0..16u64 {
            let key = format!("part-{k}");
            let master = read_replica(&mut app.world, n0, "item", key.as_bytes());
            for &n in &app.nodes.clone() {
                let r = read_replica(&mut app.world, n, "item", key.as_bytes());
                assert_eq!(
                    r, master,
                    "seed {seed}: replica of {key} on {n} equals the master copy"
                );
            }
        }
    }
}
