//! Umbrella crate re-exporting the full ENCOMPASS/TMF reproduction API.
pub use encompass;
pub use encompass_audit as audit;
pub use encompass_sim as sim;
pub use encompass_storage as storage;
pub use guardian;
pub use tmf;
