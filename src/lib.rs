//! Umbrella crate re-exporting the full ENCOMPASS/TMF reproduction API.
//!
//! Most programs only need [`prelude`]:
//!
//! ```no_run
//! use encompass_tmf::prelude::*;
//! ```

pub use encompass;
pub use encompass_audit as audit;
pub use encompass_sim as sim;
pub use encompass_storage as storage;
pub use guardian;
pub use tmf;

/// The types an application, example, or test touching the TMF surface
/// needs: the simulator world, the catalog/schema types, the session with
/// its typed [`prelude::DbOp`] requests, and node wiring.
pub mod prelude {
    // simulator
    pub use encompass_sim::{
        Ctx, Fault, NodeId, Payload, Pid, Process, SimConfig, SimDuration, SimTime, TimerId,
        World,
    };
    // storage schema + disc surface
    pub use encompass_storage::discprocess::{DiscError, DiscReply, DiscRequest};
    pub use encompass_storage::types::{FileDef, PartitionSpec, RecoveryMode, VolumeRef};
    pub use encompass_storage::Catalog;
    // the TMF session and node wiring
    pub use tmf::facility::{
        spawn_tmf_network, spawn_tmf_node, ConfigError, NodeHandles, TmfNodeConfig,
        TmfNodeConfigBuilder,
    };
    pub use encompass_storage::locks::{LockMode, LockScope};
    pub use tmf::session::{DbOp, SessionError, SessionEvent, SessionOptions, TmfSession};
    pub use tmf::state::{AbortReason, TxState, TxnClass};
    pub use tmf::Transid;
    // application layer
    pub use encompass::app::{launch_bank_app, AppBuilder, BankAppParams};
}
